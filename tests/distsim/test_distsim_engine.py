"""Engine-level invariants of the message-passing discrete-event tier.

These tests pin the determinism contract of :mod:`repro.distsim.engine` at
the record level — the differential suite (``test_reduction.py``) then pins
the *reduction* of those records to compiled schedules.
"""

import pytest

from repro.distsim import EventQueue, latency_from_params, run_timeline
from repro.distsim.engine import (
    BroadcastPolicy,
    DistConfig,
    FailoverPolicy,
    LossWindow,
    Outage,
    PartitionWindow,
    Recurrence,
    TickSpec,
    TimelineEngine,
    calibrated_crash_pattern,
)
from repro.errors import ConfigurationError
from repro.scenarios.spec import build_generator


def sticky_config(n=3, seed=0, **overrides):
    ticks = {n: TickSpec(interval=8)}
    base = dict(
        n=n,
        seed=seed,
        ticks=ticks,
        policy=FailoverPolicy(coordinator=n, replicas=tuple(range(1, n))),
        latency=latency_from_params({"latency": "constant", "latency_scale": 2}),
    )
    base.update(overrides)
    return DistConfig(**base)


class TestEventQueue:
    def test_orders_by_time_then_fifo(self):
        queue = EventQueue()
        queue.push(5, "late")
        queue.push(1, "first-at-1")
        queue.push(1, "second-at-1")
        queue.push(3, "mid")
        popped = [queue.pop() for _ in range(len(queue))]
        assert [event for _, _, event in popped] == [
            "first-at-1", "second-at-1", "mid", "late",
        ]
        assert [time for time, _, _ in popped] == [1, 1, 3, 5]

    def test_peek_time_and_emptiness(self):
        queue = EventQueue()
        assert queue.peek_time() is None and not queue
        queue.push(9, "x")
        assert queue.peek_time() == 9 and bool(queue)
        queue.pop()
        with pytest.raises(ConfigurationError):
            queue.pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            EventQueue().push(-1, "x")


class TestValidation:
    def test_tick_spec_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            TickSpec(interval=0)
        with pytest.raises(ConfigurationError):
            TickSpec(interval=4, jitter=1.5)
        with pytest.raises(ConfigurationError):
            TickSpec(interval=4, arrival_alpha=-1)

    def test_recurrence_covers_one_shot_and_recurring(self):
        one_shot = Recurrence(start=10, duration=5)
        assert not one_shot.covers(9)
        assert one_shot.covers(10) and one_shot.covers(14)
        assert not one_shot.covers(15)
        recurring = Recurrence(start=10, duration=5, period=20)
        # The window recurs forever: [10,15), [30,35), [50,55), ...
        for cycle in range(5):
            base = 10 + 20 * cycle
            assert recurring.covers(base) and recurring.covers(base + 4)
            assert not recurring.covers(base + 5)
        assert not recurring.covers(9)

    def test_recurring_duration_must_fit_period(self):
        with pytest.raises(ConfigurationError):
            Recurrence(start=0, duration=20, period=20)

    def test_config_rejects_bad_members(self):
        with pytest.raises(ConfigurationError):
            DistConfig(n=0)
        with pytest.raises(ConfigurationError):
            DistConfig(n=3, ticks={7: TickSpec(interval=4)})
        with pytest.raises(ConfigurationError):
            DistConfig(n=3, outages=(Outage(pid=9, start=0, duration=5),))
        with pytest.raises(ConfigurationError):
            DistConfig(n=3, crash_times={1: -5})
        with pytest.raises(ConfigurationError):
            LossWindow(start=0, duration=10, rate=1.5)

    def test_latency_from_params_validation(self):
        with pytest.raises(ConfigurationError):
            latency_from_params({"latency": "no-such-model"})
        with pytest.raises(ConfigurationError):
            latency_from_params({"latency": "constant", "latency_scale": 0})
        with pytest.raises(ConfigurationError):
            latency_from_params({"latency": "pareto", "latency_alpha": 0})


class TestDeterminism:
    def test_identical_seeds_identical_records(self):
        config = sticky_config()
        first = [next(TimelineEngine(config).run()) for _ in range(1)]
        runs = []
        for _ in range(2):
            engine = TimelineEngine(config)
            stepper = engine.run()
            runs.append([next(stepper) for _ in range(400)])
        assert runs[0] == runs[1]
        assert first[0] == runs[0][0]

    def test_different_seed_different_stream(self):
        params = {"schedule": "dist-heavy-tail", "n": 4}
        a = run_timeline(build_generator({**params, "seed": 1}), 400)
        b = run_timeline(build_generator({**params, "seed": 2}), 400)
        assert a.step_pids() != b.step_pids()

    def test_records_are_time_ordered_with_dense_indices(self):
        engine = TimelineEngine(sticky_config())
        stepper = engine.run()
        records = [next(stepper) for _ in range(300)]
        assert [r.index for r in records] == list(range(300))
        assert all(a.time <= b.time for a, b in zip(records, records[1:]))


class TestCausality:
    def test_no_delivery_before_send(self):
        params = {"schedule": "dist-heavy-tail", "n": 4, "seed": 5}
        timeline = run_timeline(build_generator(params), 800)
        delivers = [r for r in timeline.records if r.cause == "deliver"]
        assert delivers, "broadcast workload must deliver messages"
        for record in delivers:
            assert record.send_time >= 0
            # Latencies are at least one time unit: nothing arrives at or
            # before the instant it was sent.
            assert record.time > record.send_time

    def test_tick_records_carry_no_message_provenance(self):
        params = {"schedule": "dist-rolling-restart", "n": 3, "seed": 2}
        timeline = run_timeline(build_generator(params), 400)
        for record in timeline.records:
            if record.cause == "tick":
                assert record.src == 0 and record.send_time == -1


class TestCrashes:
    def test_crashed_process_never_steps_again(self):
        params = {
            "schedule": "dist-heavy-tail", "n": 4, "seed": 3,
            "crash_times": {2: 150},
        }
        generator = build_generator(params)
        crash_step = generator.crash_pattern.crash_steps[2]
        timeline = run_timeline(generator, 600)
        pids = timeline.step_pids()
        assert 2 not in pids[crash_step:]
        assert 2 in pids[:crash_step]
        assert timeline.crash_steps == {2: crash_step}

    def test_calibration_is_deterministic(self):
        config = sticky_config(crash_times={1: 200})
        assert (
            calibrated_crash_pattern(config).crash_steps
            == calibrated_crash_pattern(config).crash_steps
        )

    def test_all_crashed_timeline_ends_with_clear_error(self):
        params = {
            "schedule": "dist-heavy-tail", "n": 3, "seed": 0,
            "crash_times": {1: 100, 2: 120, 3: 140},
        }
        with pytest.raises(ConfigurationError, match="no alive process left"):
            run_timeline(build_generator(params), 10_000)
        # Prefixes that end before the last crash still reduce fine.
        short = run_timeline(build_generator(params), 10)
        assert len(short) == 10


class TestFaults:
    def test_partition_blocks_cross_group_messages(self):
        groups = (frozenset({1, 2}), frozenset({3}))
        window = PartitionWindow(start=0, duration=10_000, groups=groups)
        assert window.blocks(1, 3, 5)
        assert not window.blocks(1, 2, 5)
        assert not window.blocks(1, 3, 10_000)
        config = sticky_config(partitions=(window,))
        engine = TimelineEngine(config)
        stepper = engine.run()
        for _ in range(200):
            next(stepper)
        assert engine.dropped_partition > 0

    def test_loss_window_drops_deterministically(self):
        config = sticky_config(
            loss=(LossWindow(start=0, duration=2**62, rate=0.5),)
        )
        counts = []
        for _ in range(2):
            engine = TimelineEngine(config)
            stepper = engine.run()
            for _ in range(300):
                next(stepper)
            counts.append((engine.sent, engine.dropped_loss))
        assert counts[0] == counts[1]
        assert counts[0][1] > 0

    def test_outage_suppresses_steps_and_deliveries(self):
        config = sticky_config(
            outages=(Outage(pid=1, start=0, duration=100, period=200),)
        )
        engine = TimelineEngine(config)
        stepper = engine.run()
        records = [next(stepper) for _ in range(300)]
        for record in records:
            if record.pid == 1:
                assert not Recurrence(start=0, duration=100, period=200).covers(
                    record.time
                )


class TestPolicies:
    def test_broadcast_targets_everyone_else(self):
        policy = BroadcastPolicy(4)
        assert policy.targets(2, 0) == (1, 3, 4)

    def test_round_robin_failover_cycles(self):
        # Request i goes to replicas[i % len] — per request, not per epoch.
        policy = FailoverPolicy(
            coordinator=3, replicas=(1, 2), epoch=4, sticky=False
        )
        targets = [policy.targets(3, tick)[0] for tick in range(8)]
        assert targets == [1, 2, 1, 2, 1, 2, 1, 2]
        assert policy.targets(1, 0) == ()

    def test_sticky_doubling_spans_double(self):
        policy = FailoverPolicy(coordinator=3, replicas=(1, 2), epoch=2, sticky=True)
        # Eras cover 2, 4, 8, ... ticks; the primary alternates per era.
        targets = [policy.targets(3, tick)[0] for tick in range(14)]
        assert targets == [1, 1, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1]
