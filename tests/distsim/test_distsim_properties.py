"""Seeded-random property tests for the distsim tier and its analyses.

Invariants pinned here (over randomized but deterministically seeded
configurations, per the conventions of the core property suites):

* event-order determinism — identical seeds replay byte-identical timelines;
* causality — no message is delivered at or before its send instant;
* crash consistency — emitted schedules never step a crashed process and
  carry crash metadata matching the calibrated pattern;
* ``predicted_bound`` is monotone and the observed set bound never exceeds it
  (soundness of the time-domain prediction);
* ``timeliness_report`` is monotone in the latency bound: slower constant
  networks can only worsen the observed set bound.
"""

import random

import pytest

from repro.distsim import predicted_bound, run_timeline, timeliness_report
from repro.errors import ConfigurationError
from repro.scenarios.spec import build_generator

FAMILIES = (
    "dist-heavy-tail",
    "dist-diurnal",
    "dist-correlated-failures",
    "dist-rolling-restart",
)


def random_params(rng):
    family = rng.choice(FAMILIES)
    params = {
        "schedule": family,
        "n": rng.randint(3, 6),
        "seed": rng.randint(0, 10_000),
    }
    roll = rng.random()
    if roll < 0.3:
        params["loss_rate"] = rng.choice([0.1, 0.3])
    elif roll < 0.5:
        params["latency"] = rng.choice(["uniform", "pareto", "exponential"])
    return params


class TestDeterminismProperty:
    def test_identical_seeds_replay_identically(self):
        rng = random.Random(1234)
        for _ in range(12):
            params = random_params(rng)
            a = run_timeline(build_generator(params), 300)
            b = run_timeline(build_generator(params), 300)
            assert a.records == b.records, params
            assert a.stats == b.stats, params
            assert a.crash_steps == b.crash_steps, params


class TestCausalityProperty:
    def test_no_delivery_before_send(self):
        rng = random.Random(99)
        for _ in range(10):
            params = random_params(rng)
            timeline = run_timeline(build_generator(params), 300)
            for record in timeline.records:
                if record.cause == "deliver":
                    assert record.time > record.send_time >= 0, (params, record)


class TestCrashConsistencyProperty:
    def test_emitted_schedules_respect_crash_metadata(self):
        rng = random.Random(4321)
        for _ in range(10):
            params = random_params(rng)
            n = params["n"]
            victim = rng.randint(1, n - 1)
            params["crash_times"] = {str(victim): rng.randint(100, 600)}
            generator = build_generator(params)
            try:
                timeline = run_timeline(generator, 500)
            except ConfigurationError:
                # The crash can starve the run before 500 steps (e.g. the
                # victim was load-bearing); a shorter prefix must still work.
                timeline = run_timeline(build_generator(params), 50)
            assert set(timeline.crash_steps) == {victim}
            crash_step = timeline.crash_steps[victim]
            pids = timeline.step_pids()
            assert victim not in pids[crash_step:], params
            # The compiled hint convention: crashed processes appear in the
            # faulty hint exactly from their crash step on.
            from repro.distsim import compile_timeline

            compiled = compile_timeline(timeline)
            if crash_step < len(compiled):
                assert victim in compiled.crashed_by(len(compiled))
            assert victim not in compiled.crashed_by(max(crash_step - 1, 0))


class TestPredictedBound:
    def test_monotone_in_gap_arguments(self):
        rng = random.Random(7)
        for _ in range(50):
            p_gap = rng.randint(0, 400)
            q_gap = rng.randint(1, 40)
            total = rng.randint(1, 500)
            base = predicted_bound(p_gap, q_gap, total)
            # Wider P-gaps can only raise the prediction...
            assert predicted_bound(p_gap + rng.randint(1, 100), q_gap, total) >= base
            # ...denser Q-steps (smaller min gap) can only raise it too.
            if q_gap > 1:
                assert predicted_bound(p_gap, q_gap - 1, total) >= base

    def test_degenerate_arguments(self):
        # No Q-gap information: only the trivial total_q + 1 cap applies.
        assert predicted_bound(100, 0, 7) == 8
        assert predicted_bound(0, 5, 7) == 2
        with pytest.raises(ConfigurationError):
            predicted_bound(-1, 5, 7)
        with pytest.raises(ConfigurationError):
            predicted_bound(5, -1, 7)

    def test_observed_set_bound_never_exceeds_prediction(self):
        rng = random.Random(2026)
        for _ in range(10):
            params = random_params(rng)
            n = params["n"]
            timeline = run_timeline(build_generator(params), 600)
            report = timeliness_report(timeline, list(range(1, n)), [n])
            assert report.set_bound <= report.predicted, params


class TestLatencyMonotonicity:
    def test_constant_latency_sweep_is_monotone(self):
        previous = None
        for scale in (2, 4, 8, 16, 32):
            params = {
                "schedule": "dist-sticky-failover",
                "n": 3,
                "seed": 0,
                "latency": "constant",
                "latency_scale": scale,
            }
            timeline = run_timeline(build_generator(params), 1600)
            report = timeliness_report(timeline, [1, 2], [3])
            assert report.set_bound <= report.predicted
            if previous is not None:
                assert report.set_bound >= previous, scale
            previous = report.set_bound
