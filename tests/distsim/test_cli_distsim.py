"""CLI and E12 coverage: `repro distsim`, the campaign, and the pinned witness.

The acceptance witness of the tentpole lives here: one concrete distsim
configuration where the replica *set* is timely with a small bound while no
individual replica is timely — set timeliness emerging from message
timeliness, exactly the paper's Figure 1 phenomenon, derived rather than
scripted.
"""

import pytest

from repro.analysis.experiment import (
    dist_emergence_campaign_spec,
    named_campaign_spec,
    set_timeliness_emergence_experiment,
)
from repro.cli import CAMPAIGNS, EXPERIMENTS, EXPERIMENTS_MD_SECTIONS, run
from repro.distsim import run_timeline, timeliness_report
from repro.errors import ConfigurationError
from repro.scenarios.spec import build_generator

E12_HEADERS = [
    "workload arm",
    "latency",
    "set bound {p1,p2}",
    "best member bound",
    "predicted bound",
    "max latency",
    "set timely",
    "timely members",
    "emerged",
]


class TestPinnedWitness:
    """The acceptance witness: set timely, no member timely, emergence."""

    def test_sticky_failover_emergence_is_pinned(self):
        params = {"schedule": "dist-sticky-failover", "n": 3, "seed": 0}
        timeline = run_timeline(build_generator(params), 800)
        report = timeliness_report(timeline, [1, 2], [3], threshold=8)
        # The set {1,2} is timely w.r.t. the coordinator with the minimal
        # possible bound...
        assert report.set_bound == 2
        assert report.set_timely
        # ...while sticky-doubling starvation keeps every member far above
        # any reasonable bound (the doubling eras grow without bound, so
        # these only worsen with the horizon).
        assert report.member_bounds == {1: 130, 2: 149}
        assert report.timely_members == ()
        assert report.emerged
        assert report.predicted == 3

    def test_round_robin_control_does_not_emerge(self):
        params = {
            "schedule": "dist-sticky-failover", "n": 3, "seed": 0,
            "balance": "round-robin",
        }
        timeline = run_timeline(build_generator(params), 800)
        report = timeliness_report(timeline, [1, 2], [3], threshold=8)
        assert report.set_timely
        assert report.timely_members == (1, 2)
        assert not report.emerged


class TestE12Adapter:
    def test_campaign_spec_shape(self):
        spec = dist_emergence_campaign_spec(horizon=800)
        assert spec.name == "dist-emergence"
        assert spec.kind == "dist-timeliness"
        assert len(spec.runs) == 6
        arms = [run_params["arm"] for run_params in spec.runs]
        assert arms == [
            "sticky / constant",
            "sticky / uniform",
            "sticky / pareto α=1.6",
            "sticky / pareto α=1.1",
            "round-robin / constant",
            "sticky / partitioned",
        ]

    def test_named_campaign_registry_knows_e12(self):
        spec = named_campaign_spec("e12", horizon=800)
        assert spec.name == "dist-emergence"
        with pytest.raises(ConfigurationError, match="e12"):
            named_campaign_spec("no-such-campaign")

    def test_table_shape_and_verdicts(self):
        headers, rows = set_timeliness_emergence_experiment(horizon=1200)
        assert headers == E12_HEADERS
        assert len(rows) == 6
        verdicts = {row[0]: (row[6], row[8]) for row in rows}
        # All four sticky latency arms emerge; the two controls do not.
        for arm in (
            "sticky / constant", "sticky / uniform",
            "sticky / pareto α=1.6", "sticky / pareto α=1.1",
        ):
            assert verdicts[arm] == (True, True), arm
        assert verdicts["round-robin / constant"] == (True, False)
        assert verdicts["sticky / partitioned"] == (False, False)


class TestCli:
    def test_listing_names_every_family_and_latency_model(self):
        lines = run(["distsim"])
        text = "\n".join(lines)
        for family in (
            "dist-heavy-tail", "dist-diurnal", "dist-correlated-failures",
            "dist-rolling-restart", "dist-sticky-failover",
        ):
            assert family in text
        assert "constant" in text and "pareto" in text

    def test_family_run_prints_censuses_and_report(self):
        lines = run(
            ["distsim", "dist-sticky-failover", "--horizon", "800"]
        )
        text = "\n".join(lines)
        assert "reduced schedule census" in text
        assert "message census" in text
        assert "set {1,2} w.r.t. {3}: minimal bound 2" in text
        assert "emerged: True" in text

    def test_family_run_accepts_set_overrides(self):
        lines = run(
            [
                "distsim", "dist-heavy-tail", "--horizon", "400", "--n", "4",
                "--set", "latency=uniform", "--p-set", "1", "2", "--q-set", "4",
            ]
        )
        assert any("set {1,2} w.r.t. {4}" in line for line in lines)

    def test_table_flag_prints_the_e12_table(self):
        lines = run(["distsim", "--table", "--horizon", "800"])
        text = "\n".join(lines)
        assert "E12" in text
        assert "sticky / pareto α=1.1" in text
        assert "round-robin / constant" in text

    def test_campaign_e12(self):
        lines = run(["campaign", "e12", "--horizon", "800"])
        text = "\n".join(lines)
        assert CAMPAIGNS["e12"] in text
        assert "sticky / constant" in text

    def test_scenarios_listing_includes_dist_families(self):
        lines = run(["scenarios"])
        text = "\n".join(lines)
        assert "dist-sticky-failover" in text

    def test_registry_entries_exist(self):
        # The epilog audit in tests/analysis/test_cli.py keys off these.
        assert "distsim" in EXPERIMENTS
        assert (
            EXPERIMENTS_MD_SECTIONS["distsim"]
            == "E12 — set-timeliness emergence from message timeliness (distsim)"
        )
        assert "e12" in CAMPAIGNS

    def test_queue_enqueue_e12(self, tmp_path):
        db = str(tmp_path / "e12.sqlite")
        lines = run(
            ["queue", "enqueue", "e12", "--db", db, "--horizon", "400"]
        )
        text = "\n".join(lines)
        assert "dist-emergence" in text
        assert "6 new job(s)" in text
        status = "\n".join(run(["queue", "status", "--db", db]))
        assert "pending=6" in status
