"""Differential conformance: the timeline→schedule reduction is pinned.

The contract under test: for every distsim workload, compiling through the
:class:`~repro.distsim.workloads.DistSimGenerator` schedule interface
(``generator.compile``) and reducing an explicit message-level timeline
(``compile_timeline(run_timeline(...))``) produce **byte-identical** compiled
buffers — same steps, same crash metadata, same ``Πn``, same description.
Prefixes and faulty hints follow the exact conventions of every other
schedule generator, and the compiled buffers replay identically through
``execute``, ``execute_batch`` and the vector backend.

The sweep size is environment-switched: the default (tier-1) run keeps a
representative smoke subset; ``REPRO_DISTSIM_FULL=1`` (the CI ``tests-distsim``
leg) runs the full seeded grid of 50+ (family × latency × fault) combos.
"""

import os

import pytest

from repro.core.schedule import CompiledSchedule
from repro.distsim import compile_timeline, run_timeline, timeliness_report
from repro.distsim.workloads import DistSimGenerator
from repro.errors import ConfigurationError
from repro.runtime.automaton import IdleAutomaton
from repro.runtime.backends import get_backend
from repro.runtime.kernel import FAST, execute, execute_batch
from repro.runtime.simulator import Simulator
from repro.scenarios.spec import build_generator

FULL_SWEEP = os.environ.get("REPRO_DISTSIM_FULL", "") not in ("", "0")

FAMILIES = (
    "dist-heavy-tail",
    "dist-diurnal",
    "dist-correlated-failures",
    "dist-rolling-restart",
    "dist-sticky-failover",
)

LATENCIES = (
    {},
    {"latency": "constant", "latency_scale": 3},
    {"latency": "uniform", "latency_scale": 2, "latency_spread": 6},
    {"latency": "pareto", "latency_scale": 2, "latency_alpha": 1.2},
)

FAULTS = (
    {},
    {"loss_rate": 0.2},
    {"crash_times": {"2": 900}},
    {
        "partitions": [
            {"start": 200, "duration": 150, "period": 500, "groups": [[1, 2], [3]]}
        ]
    },
)


def _combo_params():
    """The seeded (family × latency × fault) grid, deterministic by design."""
    combos = []
    seed = 0
    for family in FAMILIES:
        for latency in LATENCIES:
            for fault in FAULTS:
                if family == "dist-sticky-failover" and "partitions" not in fault:
                    # The failover arm fixes n=3; the partition fault already
                    # names processes 1..3, everything else is n-agnostic.
                    n = 3
                elif "partitions" in fault:
                    n = 3
                else:
                    n = 3 + (seed % 2)
                params = {"schedule": family, "n": n, "seed": seed}
                params.update(latency)
                params.update(fault)
                combos.append(params)
                seed += 1
    assert len(combos) >= 50
    return combos


_ALL_COMBOS = _combo_params()
# The smoke subset still crosses every family with every latency and fault
# kind at least once (stride 7 over an 80-combo grid hits 12 spread combos).
_SMOKE_COMBOS = _ALL_COMBOS[::7]
COMBOS = _ALL_COMBOS if FULL_SWEEP else _SMOKE_COMBOS


def _combo_id(params):
    return f"{params['schedule']}-s{params['seed']}"


class TestDifferentialReduction:
    @pytest.mark.parametrize("params", COMBOS, ids=_combo_id)
    def test_generator_and_reduction_are_byte_identical(self, params):
        length = 400
        generator = build_generator(params)
        assert isinstance(generator, DistSimGenerator)
        via_generator = generator.compile(length)

        timeline = run_timeline(build_generator(params), length)
        via_reduction = compile_timeline(timeline)

        assert via_generator.steps == via_reduction.steps  # array equality
        assert via_generator.steps.tobytes() == via_reduction.steps.tobytes()
        assert via_generator.n == via_reduction.n
        assert dict(via_generator.crash_steps) == dict(via_reduction.crash_steps)
        assert via_generator.description == via_reduction.description

    @pytest.mark.parametrize("params", COMBOS, ids=_combo_id)
    def test_prefix_and_crash_hint_follow_generator_conventions(self, params):
        compiled = compile_timeline(run_timeline(build_generator(params), 300))
        for prefix_length in (0, 120, 300):
            expected = build_generator(params).generate(prefix_length)
            actual = compiled.prefix(prefix_length)
            assert actual.steps == expected.steps
            assert actual.faulty_hint == expected.faulty_hint
        assert compiled.faulty == build_generator(params).faulty


def _idle_replica(n):
    return Simulator(n=n, automata={pid: IdleAutomaton(pid, n) for pid in range(1, n + 1)})


def _replica_view(sim):
    return (
        tuple(sim.steps_taken(pid) for pid in range(1, sim.n + 1)),
        sim.halted_processes(),
    )


REPLAY_COMBOS = COMBOS[:: max(1, len(COMBOS) // 6)]


class TestReplay:
    """Both compiled buffers drive the execution kernel identically."""

    @pytest.mark.parametrize("params", REPLAY_COMBOS, ids=_combo_id)
    def test_execute_matches_across_compilation_paths(self, params):
        length = 250
        buffers = [
            build_generator(params).compile(length),
            compile_timeline(run_timeline(build_generator(params), length)),
        ]
        views = []
        for compiled in buffers:
            sim = _idle_replica(compiled.n)
            result = execute(sim, compiled)
            views.append((_replica_view(sim), result.steps_executed))
        assert views[0] == views[1]

    @pytest.mark.parametrize("params", REPLAY_COMBOS, ids=_combo_id)
    def test_execute_batch_reference_backend(self, params):
        length = 250
        compiled = compile_timeline(run_timeline(build_generator(params), length))
        replicas = [_idle_replica(compiled.n) for _ in range(3)]
        results = execute_batch(replicas, compiled, policy=FAST, backend="python")
        solo = _idle_replica(compiled.n)
        execute(solo, compiled, policy=FAST)
        for sim in replicas:
            assert _replica_view(sim) == _replica_view(solo)
        assert {r.steps_executed for r in results} == {length}

    @pytest.mark.parametrize("params", REPLAY_COMBOS, ids=_combo_id)
    def test_execute_batch_vector_backend(self, params):
        if not get_backend("vector").available():
            pytest.skip("vector backend unavailable (numpy not installed)")
        length = 250
        compiled = compile_timeline(run_timeline(build_generator(params), length))
        reference = [_idle_replica(compiled.n) for _ in range(2)]
        vectored = [_idle_replica(compiled.n) for _ in range(2)]
        execute_batch(reference, compiled, policy=FAST, backend="python")
        execute_batch(vectored, compiled, policy=FAST, backend="vector")
        for ref, vec in zip(reference, vectored):
            assert _replica_view(ref) == _replica_view(vec)


class TestReductionEdges:
    def test_zero_length_timeline_reduces_to_empty_schedule(self):
        params = {"schedule": "dist-heavy-tail", "n": 3, "seed": 1}
        timeline = run_timeline(build_generator(params), 0)
        assert len(timeline) == 0 and timeline.duration == 0
        compiled = compile_timeline(timeline)
        assert isinstance(compiled, CompiledSchedule)
        assert len(compiled) == 0
        assert compiled.prefix().steps == ()

    def test_run_timeline_requires_dist_generator(self):
        plain = build_generator({"schedule": "round-robin", "n": 3})
        with pytest.raises(ConfigurationError, match="distsim"):
            run_timeline(plain, 10)

    def test_timeline_stats_are_reproducible(self):
        params = {"schedule": "dist-heavy-tail", "n": 4, "seed": 9, "loss_rate": 0.3}
        a = run_timeline(build_generator(params), 500)
        b = run_timeline(build_generator(params), 500)
        assert a.stats == b.stats
        assert a.stats.dropped_loss > 0
        # Conservation: every sent message is delivered, dropped, or still in
        # flight when the horizon cuts the run — never double-counted.
        accounted = (
            a.stats.delivered
            + a.stats.dropped_loss
            + a.stats.dropped_partition
            + a.stats.dropped_down
        )
        assert accounted <= a.stats.sent


class TestReportConsistency:
    def test_report_matches_across_fresh_runs(self):
        params = {"schedule": "dist-sticky-failover", "n": 3, "seed": 0}
        first = timeliness_report(run_timeline(build_generator(params), 800), [1, 2], [3])
        second = timeliness_report(run_timeline(build_generator(params), 800), [1, 2], [3])
        assert first.to_payload() == second.to_payload()
