"""Tests for the falsifiable properties and the certification stage."""

import pytest

from repro.errors import ConfigurationError
from repro.failure_detectors.base import FD_OUTPUT
from repro.scenarios.spec import build_generator
from repro.search import (
    AgreementSafetyProperty,
    KAntiOmegaConvergenceProperty,
    LeaderSetConvergenceProperty,
    available_properties,
    certify_schedule,
    checkpoint_snapshots,
    make_property,
    make_recipe,
    property_descriptions,
    realize,
    timeliness_fitness,
)

IN_MODEL = {
    "schedule": "set-timely",
    "n": 4,
    "t": 2,
    "k": 2,
    "p_set": [1, 2],
    "q_set": [1, 2, 3],
    "bound": 3,
    "seed": 0,
}


def in_model_schedule(horizon=2400):
    return realize(make_recipe(IN_MODEL, horizon))


def rotation_schedule(horizon=2400):
    """The carrier-rotation adversary — NB: certified *in-model* at (2, 3, 4).

    With carriers {1,2,3} a witness pair always exists (e.g. {1,2} w.r.t.
    {1,2,4}: a {1,2}-free run is one carrier-3 phase plus a boundary, which
    contains at most one Q-step), which is exactly why Theorem 23 applies and
    the degree-2 detector converges on it.
    """
    params = {"schedule": "carrier-rotation", "n": 4, "carriers": [1, 2, 3]}
    return build_generator(params).compile(horizon)


def out_of_model_schedule(horizon=2400):
    """Four long solo regimes: no size-(2, 3) pair is timely with a small bound.

    Every 2-set P misses at least two of the four soloists, and every 3-set Q
    contains at least one of the missed soloists, so some P-free regime holds
    a full solo run of Q-steps — the observed bound is the regime length, far
    above any reasonable certification bound.
    """
    quarter = horizon // 4
    mutations = [
        {"op": "burst", "pid": pid, "start": index * quarter, "length": quarter}
        for index, pid in enumerate((1, 2, 3, 4))
    ]
    return realize(make_recipe({"schedule": "round-robin", "n": 4}, horizon, mutations))


class TestRegistry:
    def test_registered_properties(self):
        assert available_properties() == [
            "agreement-safety",
            "k-anti-omega-convergence",
            "leader-set-convergence",
        ]

    def test_descriptions_are_one_liners(self):
        for name, description in property_descriptions().items():
            assert description, f"property {name} has no description"
            assert "\n" not in description

    def test_make_property_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_property("no-such-claim", {"n": 4, "t": 2, "k": 2})

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            KAntiOmegaConvergenceProperty(n=4, t=4, k=2)
        with pytest.raises(ConfigurationError):
            KAntiOmegaConvergenceProperty(n=4, t=2, k=5)

    def test_certification_sizes_are_k_and_t_plus_one(self):
        prop = make_property("k-anti-omega-convergence", {"n": 5, "t": 3, "k": 2})
        assert prop.certification_sizes() == (2, 4)


class TestCheckpointSnapshots:
    def test_snapshot_count_and_final_state(self):
        prop = KAntiOmegaConvergenceProperty(n=4, t=2, k=2)
        compiled = in_model_schedule(1200)
        simulator = prop._build_simulator()
        snapshots = checkpoint_snapshots(simulator, compiled, 6, (FD_OUTPUT,))
        assert len(snapshots) == 6
        # The final snapshot must equal a fresh uninstrumented full run.
        reference = prop._build_simulator()
        reference.run_fast(compiled)
        for pid in range(1, 5):
            assert snapshots[-1][pid][FD_OUTPUT] == reference.output_of(pid, FD_OUTPUT)

    def test_zero_checkpoints_rejected(self):
        prop = KAntiOmegaConvergenceProperty(n=4, t=2, k=2)
        with pytest.raises(ConfigurationError):
            checkpoint_snapshots(prop._build_simulator(), in_model_schedule(100), 0, (FD_OUTPUT,))

    def test_zero_length_schedule_snapshots(self):
        # Regression: a zero-step compiled buffer still yields the requested
        # number of (identical, initial-state) snapshots instead of raising.
        prop = KAntiOmegaConvergenceProperty(n=4, t=2, k=2)
        compiled = build_generator(IN_MODEL).compile(0)
        snapshots = checkpoint_snapshots(prop._build_simulator(), compiled, 3, (FD_OUTPUT,))
        assert len(snapshots) == 3
        assert snapshots[0] == snapshots[-1]


def all_crashed_schedule(horizon=40):
    """A prefix whose crash metadata marks every process as already faulty."""
    from repro.core.schedule import CompiledSchedule

    steps = [1 + (i % 4) for i in range(horizon)]
    return CompiledSchedule(
        n=4, steps=steps, crash_steps={1: 10, 2: 20, 3: 30, 4: 30},
        description="all crashed",
    )


class TestEmptyCorrectSet:
    """An all-crashed prefix is unjudgeable, never a counterexample.

    Regression: ``all(...)`` over an empty correct set is vacuously true, which
    used to flip the screen verdicts to violated (no candidate can ever
    stabilize) and made the k-anti-Ω confirm raise ``VerificationError``.
    """

    @pytest.mark.parametrize(
        "cls", [KAntiOmegaConvergenceProperty, LeaderSetConvergenceProperty]
    )
    def test_screen_and_confirm_not_violated(self, cls):
        compiled = all_crashed_schedule()
        prop = cls(n=4, t=2, k=2)
        screen = prop.screen(compiled, 4)
        confirm = prop.confirm(compiled)
        assert not screen.violated
        assert not confirm.violated
        assert screen.details["correct"] == []


class TestDetectorProperties:
    def test_in_model_schedule_is_not_violated(self):
        compiled = in_model_schedule()
        for cls in (KAntiOmegaConvergenceProperty, LeaderSetConvergenceProperty):
            prop = cls(n=4, t=2, k=2)
            screen = prop.screen(compiled, 8)
            confirm = prop.confirm(compiled)
            assert not screen.violated
            assert not confirm.violated
            assert 0.0 <= screen.fitness <= 1.0
            assert screen.details["all_correct_produced"]
            assert confirm.details["all_correct_produced"]
            # In-model runs stabilize well before the horizon.
            assert screen.fitness < 0.5
            assert confirm.fitness < 0.5

    def test_screen_fitness_reflects_stabilization_delay(self):
        prop = KAntiOmegaConvergenceProperty(n=4, t=2, k=2)
        stable = prop.screen(in_model_schedule(), 8)
        churning = prop.screen(
            realize(
                make_recipe(
                    IN_MODEL,
                    2400,
                    [{"op": "silence", "pids": [1, 2], "start": 200, "length": 2200}],
                )
            ),
            8,
        )
        assert churning.fitness >= stable.fitness

    def test_unjudgeable_prefix_is_not_a_violation(self):
        # 40 steps is far too short for every process to publish an output;
        # confirm must refuse to call that a counterexample.
        prop = KAntiOmegaConvergenceProperty(n=4, t=2, k=2)
        verdict = prop.confirm(in_model_schedule(40))
        assert not verdict.violated
        assert not verdict.details["all_correct_produced"]

    def test_screen_and_confirm_are_deterministic(self):
        prop = LeaderSetConvergenceProperty(n=4, t=2, k=2)
        compiled = rotation_schedule(1200)
        assert prop.screen(compiled, 6) == prop.screen(compiled, 6)
        assert prop.confirm(compiled) == prop.confirm(compiled)


class TestAgreementSafety:
    def test_safety_holds_on_benign_and_adversarial_schedules(self):
        prop = AgreementSafetyProperty(n=4, t=2, k=2)
        for compiled in (in_model_schedule(), out_of_model_schedule()):
            screen = prop.screen(compiled, 8)
            confirm = prop.confirm(compiled)
            assert not screen.violated
            assert not confirm.violated
            assert screen.details["valid"]
            assert screen.details["agreement"]
            assert screen.details["distinct_decisions"] <= 2

    def test_fitness_rewards_starved_termination(self):
        prop = AgreementSafetyProperty(n=4, t=2, k=2)
        # At a horizon this short nobody decides: the liveness near-miss.
        starved = prop.screen(in_model_schedule(120), 4)
        decided = prop.screen(in_model_schedule(2400), 4)
        assert starved.fitness >= decided.fitness


class TestCertification:
    def test_in_model_schedule_certifies(self):
        report = certify_schedule(in_model_schedule(), 2, 3, certify_bound=12, max_faulty=2)
        assert report.in_model
        assert report.crash_ok
        assert report.observed_bound <= 12
        assert "certified" in report.reason

    def test_rotation_adversary_is_in_model_at_these_sizes(self):
        # Membership is existential over (P, Q): the rotation adversary still
        # admits a witness at (2, 3, 4) — the reason the detector converges
        # on it (see rotation_schedule's docstring).
        report = certify_schedule(rotation_schedule(), 2, 3, certify_bound=12, max_faulty=2)
        assert report.in_model

    def test_solo_regimes_are_out_of_model(self):
        report = certify_schedule(
            out_of_model_schedule(), 2, 3, certify_bound=12, max_faulty=2
        )
        assert not report.in_model
        assert report.crash_ok
        assert report.observed_bound > 12
        assert "out of model" in report.reason

    def test_crash_budget_is_enforced(self):
        mutations = [{"op": "crash", "pid": pid, "at": 0} for pid in (2, 3, 4)]
        compiled = realize(make_recipe(IN_MODEL, 600, mutations))
        report = certify_schedule(compiled, 2, 3, certify_bound=50, max_faulty=2)
        assert not report.crash_ok
        assert not report.in_model
        assert "crashes exceed" in report.reason

    def test_payload_round_trips_to_json_types(self):
        payload = certify_schedule(
            in_model_schedule(), 2, 3, certify_bound=12, max_faulty=2
        ).to_payload()
        import json

        assert json.loads(json.dumps(payload)) == payload

    def test_timeliness_fitness_orders_schedules(self):
        benign = timeliness_fitness(in_model_schedule(), 2, 3)
        adversarial = timeliness_fitness(out_of_model_schedule(), 2, 3)
        assert 0.0 <= benign < adversarial <= 1.0
