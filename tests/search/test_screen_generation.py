"""Whole-generation screening: the column lane is verdict-identical.

ISSUE 8's differential suite.  ``screen_generation`` with the auto planner
(or a forced ``vector`` backend) must return :class:`PropertyVerdict`s that
compare *equal* — same ``violated``, ``fitness``, ``mode`` and ``details``
dicts — to the per-candidate :meth:`ScheduleProperty.screen` reference path,
for every registered property, across seeded generations that mix schedule
lengths, crash a process at step 0, and shrink to a generation of one.
Batches the column lane cannot take (agreement-safety composes an automaton
with no vector lowering) must fall back loudly under ``auto`` and raise
under a forced ``vector`` backend.  The search engine's screen-verdict cache
rides the same lane; its hit accounting is pinned here too.
"""

import logging
import random
from array import array

import pytest

from repro.core.schedule import CompiledSchedule
from repro.errors import ConfigurationError, SimulationError
from repro.runtime import backends as backends_module
from repro.runtime.backends import get_backend
from repro.search.engine import (
    _screened_verdicts,
    reset_screen_cache,
    screen_cache_stats,
)
from repro.search.properties import (
    ScheduleProperty,
    available_properties,
    last_screen_plan,
    make_property,
    screen_generation,
)

PARAMS = {"n": 4, "t": 2, "k": 2}
COLUMN_PROPERTIES = ("k-anti-omega-convergence", "leader-set-convergence")


def _needs_numpy():
    if not get_backend("vector").available():
        pytest.skip("numpy unavailable")


def _generation(seed, n=4, lengths=(0, 1, 30, 31, 173, 600), crash_first=True):
    """A seeded mixed-length generation; first non-empty row crashes at step 0."""
    rng = random.Random(seed)
    compileds = []
    for index, length in enumerate(lengths):
        steps = array("i", [rng.randrange(1, n + 1) for _ in range(length)])
        crash = {steps[0]: 0} if crash_first and index == 1 and length else {}
        compileds.append(CompiledSchedule(n=n, steps=steps, crash_steps=crash))
    return compileds


def _reference(prop, compileds, checkpoints):
    return [prop.screen(compiled, checkpoints) for compiled in compileds]


class TestDifferentialSweep:
    @pytest.mark.parametrize("name", sorted(available_properties()))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_auto_matches_reference_for_every_property(self, name, seed):
        prop = make_property(name, PARAMS)
        compileds = _generation(seed)
        expected = _reference(prop, compileds, 8)
        actual = screen_generation(prop, compileds, 8, backend="auto")
        assert actual == expected

    @pytest.mark.parametrize("name", COLUMN_PROPERTIES)
    @pytest.mark.parametrize("checkpoints", [1, 2, 7])
    def test_forced_vector_matches_reference(self, name, checkpoints):
        _needs_numpy()
        prop = make_property(name, PARAMS)
        compileds = _generation(17, lengths=(0, 3, 29, 64, 601))
        expected = _reference(prop, compileds, checkpoints)
        actual = screen_generation(prop, compileds, checkpoints, backend="vector")
        assert actual == expected
        assert last_screen_plan()["lane"] == "column"

    def test_generation_of_one(self):
        _needs_numpy()
        prop = make_property("k-anti-omega-convergence", PARAMS)
        compileds = _generation(5, lengths=(240,), crash_first=False)
        assert screen_generation(prop, compileds, 8, backend="vector") == _reference(
            prop, compileds, 8
        )
        assert last_screen_plan() == {"lane": "column", "reason": None, "batch": 1}

    def test_crash_at_step_zero_alone(self):
        _needs_numpy()
        prop = make_property("k-anti-omega-convergence", PARAMS)
        compiled = CompiledSchedule(
            n=4, steps=array("i", [1, 2, 3, 4] * 50), crash_steps={1: 0}
        )
        assert screen_generation(prop, [compiled], 4, backend="vector") == _reference(
            prop, [compiled], 4
        )

    def test_empty_generation(self):
        prop = make_property("k-anti-omega-convergence", PARAMS)
        assert screen_generation(prop, [], 8, backend="auto") == []

    def test_unknown_backend_rejected(self):
        prop = make_property("k-anti-omega-convergence", PARAMS)
        with pytest.raises(ConfigurationError, match="unknown backend"):
            screen_generation(prop, _generation(0), 8, backend="cuda")


class TestAutoFallback:
    def test_unlowerable_property_falls_back_loudly(self, caplog):
        """agreement-safety composes an unlowered automaton: loud reference lane."""
        backends_module._WARNED_FALLBACKS.clear()
        prop = make_property("agreement-safety", PARAMS)
        compileds = _generation(9, lengths=(0, 12, 90))
        with caplog.at_level(
            logging.WARNING, logger=backends_module._LOGGER.name
        ):
            actual = screen_generation(prop, compileds, 6, backend="auto")
        assert actual == _reference(prop, compileds, 6)
        plan = last_screen_plan()
        assert plan["lane"] == "reference" and plan["batch"] == 3
        assert plan["reason"]
        if get_backend("vector").available():
            assert "ComposedAutomaton" in plan["reason"]
            assert any(
                "falling back" in record.message for record in caplog.records
            )

    def test_forced_vector_raises_on_unlowerable_property(self):
        _needs_numpy()
        prop = make_property("agreement-safety", PARAMS)
        with pytest.raises(SimulationError, match="could not take the batch"):
            screen_generation(prop, _generation(9, lengths=(12,)), 6, backend="vector")

    def test_screen_override_falls_back_under_auto(self):
        """A property spelling its own screen() keeps it under the planner."""

        class Opinionated(ScheduleProperty):
            name = "opinionated"

            def __init__(self):
                self.calls = 0

            def screen(self, compiled, checkpoints):
                self.calls += 1
                return ScheduleProperty.screen(
                    make_property("k-anti-omega-convergence", PARAMS),
                    compiled,
                    checkpoints,
                )

            def _build_simulator(self):  # pragma: no cover - never reached
                raise AssertionError

            def judge_screen(self, snapshots, compiled):  # pragma: no cover
                raise AssertionError

            def confirm(self, compiled):  # pragma: no cover
                raise AssertionError

        prop = Opinionated()
        compileds = _generation(2, lengths=(10, 20))
        verdicts = screen_generation(prop, compileds, 4, backend="auto")
        assert prop.calls == 2 and len(verdicts) == 2
        assert last_screen_plan()["lane"] == "reference"
        with pytest.raises(SimulationError):
            screen_generation(prop, compileds, 4, backend="vector")


class TestEngineScreenCache:
    def test_hits_counted_on_rescreened_candidates(self):
        """Satellite 2: re-screening a generation is all cache hits, no lane work."""
        reset_screen_cache()
        prop = make_property("k-anti-omega-convergence", PARAMS)
        compileds = _generation(23, lengths=(40, 41, 42, 40))
        first = _screened_verdicts(prop, compileds, 8, "auto")
        stats = screen_cache_stats()
        assert stats["misses"] == 4 and stats["hits"] == 0
        second = _screened_verdicts(prop, compileds, 8, "auto")
        stats = screen_cache_stats()
        assert stats["hits"] == 4 and stats["misses"] == 4
        assert second == first == _reference(prop, compileds, 8)
        # A changed checkpoint count is a different cache identity.
        _screened_verdicts(prop, compileds, 4, "auto")
        assert screen_cache_stats()["misses"] == 8
        reset_screen_cache()
        assert screen_cache_stats() == {"hits": 0, "misses": 0}
