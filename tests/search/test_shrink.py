"""Shrinker invariants: still failing, prefix-consistent, deterministic."""

import random
from array import array

import pytest

from repro.core.schedule import CompiledSchedule
from repro.errors import ConfigurationError
from repro.search import (
    make_recipe,
    make_property,
    realize,
    rebuild_candidate,
    shrink_schedule,
)

IN_MODEL = {
    "schedule": "set-timely",
    "n": 4,
    "t": 2,
    "k": 2,
    "p_set": [1, 2],
    "q_set": [1, 2, 3],
    "bound": 3,
    "seed": 0,
}


def random_compiled(n=4, length=240, seed=9, crash_steps=None):
    rng = random.Random(seed)
    return CompiledSchedule(
        n=n,
        steps=array("i", [rng.randint(1, n) for _ in range(length)]),
        crash_steps=crash_steps or {},
    )


def count_of(compiled, pid):
    return sum(1 for step in compiled.steps if step == pid)


class TestDdminCore:
    def test_minimizes_to_the_predicate_core(self):
        compiled = random_compiled()
        result = shrink_schedule(
            compiled, lambda c: count_of(c, 1) >= 5, max_evaluations=2000
        )
        # The minimal schedule satisfying "at least five steps of process 1"
        # is exactly five steps, all of process 1.
        assert result.shrunk_length == 5
        assert all(pid == 1 for pid in result.schedule.steps)
        assert result.original_length == 240
        assert result.removed_steps == 235

    def test_shrunk_schedule_still_fails_the_same_property(self):
        # Alternating silences keep the detector churning past mid-horizon, so
        # the near-miss predicate (stabilization-delay fitness at threshold
        # 0.5 with every correct process producing output) holds — and must
        # keep holding on the minimal reproducer.
        compiled = realize(
            make_recipe(
                IN_MODEL,
                1200,
                [
                    {"op": "silence", "pids": [1, 2], "start": 200, "length": 250},
                    {"op": "silence", "pids": [3, 4], "start": 500, "length": 300},
                    {"op": "silence", "pids": [1, 2], "start": 850, "length": 350},
                ],
            )
        )
        prop = make_property("k-anti-omega-convergence", {"n": 4, "t": 2, "k": 2})

        def predicate(candidate):
            verdict = prop.screen(candidate, 6)
            return verdict.fitness >= 0.5 and verdict.details["all_correct_produced"]

        assert predicate(compiled)
        result = shrink_schedule(compiled, predicate, max_evaluations=80)
        assert predicate(result.schedule)
        assert result.shrunk_length <= result.original_length

    def test_rejects_an_input_that_does_not_fail(self):
        with pytest.raises(ConfigurationError):
            shrink_schedule(random_compiled(), lambda c: False)

    def test_respects_the_evaluation_budget(self):
        calls = 0

        def predicate(candidate):
            nonlocal calls
            calls += 1
            return count_of(candidate, 1) >= 3

        shrink_schedule(random_compiled(), predicate, max_evaluations=17)
        assert calls <= 17


class TestPrefixConsistency:
    def test_crash_metadata_never_contradicts_the_buffer(self):
        compiled = realize(
            make_recipe(IN_MODEL, 600, [{"op": "crash", "pid": 3, "at": 150}])
        )
        result = shrink_schedule(
            compiled, lambda c: count_of(c, 1) >= 4, max_evaluations=500
        )
        shrunk = result.schedule
        steps = list(shrunk.steps)
        for pid, crash_at in shrunk.crash_steps.items():
            assert all(step != pid for step in steps[crash_at:])
        # The prefix constructor must accept it (faulty hint consistency).
        prefix = shrunk.prefix()
        assert prefix.n == shrunk.n

    def test_faulty_set_preserved_unless_a_crash_is_dropped(self):
        compiled = random_compiled(crash_steps={3: 0})
        result = shrink_schedule(
            compiled,
            lambda c: count_of(c, 1) >= 3 and 3 in c.faulty,
            max_evaluations=800,
        )
        assert result.schedule.faulty == frozenset({3})
        assert result.removed_crashes == 0

    def test_droppable_crashes_are_dropped(self):
        compiled = random_compiled(crash_steps={3: 0, 4: 0})
        result = shrink_schedule(
            compiled, lambda c: count_of(c, 1) >= 3, max_evaluations=800
        )
        # Neither crash matters to the predicate, so the shrinker removes both.
        assert result.schedule.faulty == frozenset()
        assert result.removed_crashes == 2


class TestDeterminism:
    def test_same_input_same_minimal_reproducer(self):
        compiled = realize(
            make_recipe(
                IN_MODEL,
                800,
                [
                    {"op": "burst", "pid": 4, "start": 200, "length": 300},
                    {"op": "crash", "pid": 3, "at": 400},
                ],
            )
        )

        def predicate(candidate):
            return count_of(candidate, 4) >= 10

        first = shrink_schedule(compiled, predicate, max_evaluations=300)
        second = shrink_schedule(compiled, predicate, max_evaluations=300)
        assert list(first.schedule.steps) == list(second.schedule.steps)
        assert first.schedule.crash_steps == second.schedule.crash_steps
        assert first.evaluations == second.evaluations
        assert first.summary() == second.summary()


class TestRebuildCandidate:
    def test_crash_indices_recomputed_from_last_occurrence(self):
        candidate = rebuild_candidate(4, [1, 3, 2, 3, 1], [3], "test")
        assert candidate.crash_steps == {3: 4}

    def test_absent_faulty_process_crashes_at_zero(self):
        candidate = rebuild_candidate(4, [1, 2, 1], [3], "test")
        assert candidate.crash_steps == {3: 0}
        assert candidate.faulty == frozenset({3})
