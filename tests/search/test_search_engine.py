"""Tests for the falsify → shrink → certify search engine."""

import json

import pytest

from repro.campaign import CampaignEngine, ResultCache
from repro.campaign.runner import _KINDS
from repro.campaign.spec import RunSpec
from repro.campaign import execute_spec
from repro.errors import ConfigurationError
from repro.search import (
    IN_MODEL_VIOLATION,
    NEAR_MISS,
    OUT_OF_MODEL_VIOLATION,
    SearchConfig,
    generation_recipes,
    recipe_signature,
    run_search,
    search_report_lines,
    seed_recipes,
)
from repro.search.properties import (
    PROPERTY_CLASSES,
    KAntiOmegaConvergenceProperty,
    PropertyVerdict,
)


def fingerprint(report):
    """Everything deterministic about a report (timings excluded)."""
    return json.dumps(
        {
            "candidates": [
                (c.generation, c.signature, c.fitness, c.screen_violated,
                 c.confirmed_violated, c.in_model)
                for c in report.candidates
            ],
            "findings": [
                (f.kind, list(f.schedule.steps), dict(f.schedule.crash_steps),
                 f.certificate.reason)
                for f in report.findings
            ],
        },
        sort_keys=True,
    )


class TestConfig:
    def test_unknown_property_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchConfig(property="no-such-claim")

    def test_unknown_fitness_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchConfig(fitness="vibes")

    def test_certify_bound_defaults_to_four_times_the_seed_bound(self):
        assert SearchConfig(bound=3).resolved_certify_bound() == 12
        assert SearchConfig(bound=3, certify_bound=7).resolved_certify_bound() == 7

    def test_command_round_trips_the_smoke_flags(self):
        config = SearchConfig.smoke_config("agreement-safety", generations=4, seed=9)
        command = config.command()
        assert "--property agreement-safety" in command
        assert "--generations 4" in command
        assert "--seed 9" in command
        assert "--smoke" in command


class TestPopulations:
    def test_seed_recipes_cover_in_model_and_adversarial_bases(self):
        config = SearchConfig.smoke_config("k-anti-omega-convergence")
        families = [recipe["base"]["schedule"] for recipe in seed_recipes(config)]
        assert "set-timely" in families
        assert "carrier-rotation" in families
        assert "alternating-epochs" in families

    def test_generation_zero_is_deterministic_and_sized(self):
        config = SearchConfig.smoke_config("k-anti-omega-convergence")
        first = generation_recipes(config, 0, [])
        second = generation_recipes(config, 0, [])
        assert first == second
        assert len(first) == config.population

    def test_later_generations_carry_elites_verbatim(self):
        config = SearchConfig.smoke_config("k-anti-omega-convergence")
        elites = generation_recipes(config, 0, [])[: config.elites]
        population = generation_recipes(config, 1, elites)
        assert population[: config.elites] == elites
        assert len(population) == config.population


class TestSmokeSearch:
    @pytest.fixture(scope="class")
    def smoke_report(self):
        config = SearchConfig.smoke_config("k-anti-omega-convergence", generations=5, seed=0)
        return run_search(config)

    def test_acceptance_invariants(self, smoke_report):
        # The headline the E11 table and the atlas pin: no in-model
        # violations, and at least one shrunk out-of-model/near-miss finding.
        assert smoke_report.in_model_violation_count() == 0
        assert smoke_report.findings
        assert any(f.certificate.in_model is False for f in smoke_report.findings)

    def test_deterministic_across_runs(self, smoke_report):
        config = SearchConfig.smoke_config("k-anti-omega-convergence", generations=5, seed=0)
        assert fingerprint(run_search(config)) == fingerprint(smoke_report)

    def test_findings_are_shrunk_and_consistent(self, smoke_report):
        for finding in smoke_report.findings:
            assert finding.shrunk_length <= finding.original_length
            steps = list(finding.schedule.steps)
            for pid, crash_at in finding.schedule.crash_steps.items():
                assert all(step != pid for step in steps[crash_at:])

    def test_report_lines_name_the_regenerating_command(self, smoke_report):
        text = "\n".join(search_report_lines(smoke_report))
        assert "in-model violations: 0" in text
        assert "repro search --property k-anti-omega-convergence" in text
        assert "--smoke" in text

    def test_jsonl_records(self, smoke_report, tmp_path):
        from repro.search import write_search_jsonl

        path = tmp_path / "search.jsonl"
        write_search_jsonl(smoke_report, path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {record["record"] for record in records}
        assert kinds == {"candidate", "finding"}
        findings = [r for r in records if r["record"] == "finding"]
        assert all("regenerate" in r and r["steps"] for r in findings)


class TestCampaignIntegration:
    def test_pooled_and_cached_runs_match_serial(self, tmp_path):
        config = SearchConfig.smoke_config(
            "k-anti-omega-convergence", generations=2, seed=3
        )
        serial = fingerprint(run_search(config))
        cache = ResultCache(tmp_path / "cache")
        with CampaignEngine(workers=2, cache=cache) as engine:
            pooled = fingerprint(run_search(config, engine=engine))
            resumed = run_search(config, engine=engine)
        assert pooled == serial
        assert fingerprint(resumed) == serial
        # Every generation of the second run is served from the cache.
        assert all(stats.cached_runs > 0 for stats in resumed.generations)

    def test_search_eval_kind_resolves_lazily(self):
        spec = RunSpec.create(
            "search-eval",
            {
                "property": "k-anti-omega-convergence",
                "property_params": {"n": 4, "t": 2, "k": 2},
                "fitness": "stabilization-delay",
                "checkpoints": 4,
                "near_miss_threshold": 0.8,
                "certify_bound": 12,
                "certify_prefix": None,
                "recipes": [
                    {
                        "base": {"schedule": "round-robin", "n": 4},
                        "horizon": 200,
                        "mutations": [],
                    }
                ],
            },
        )
        removed = _KINDS.pop("search-eval")
        try:
            payload = execute_spec(spec)
        finally:
            _KINDS.setdefault("search-eval", removed)
        assert len(payload["results"]) == 1
        assert payload["results"][0]["length"] == 200


class _AlwaysViolated(KAntiOmegaConvergenceProperty):
    """Stub: 'violated whenever process 1 takes at least ten steps'.

    Exercises the violation branch (classification + confirm-predicate
    shrinking) that the real detector — correctly — never reaches at smoke
    scale.
    """

    name = "stub-always-violated"

    def _verdict(self, compiled, mode):
        count = sum(1 for step in compiled.steps if step == 1)
        violated = count >= 10
        return PropertyVerdict(
            property_name=self.name,
            violated=violated,
            fitness=1.0 if violated else 0.0,
            mode=mode,
            details={"count": count, "all_correct_produced": True},
        )

    def screen(self, compiled, checkpoints):
        return self._verdict(compiled, "screen")

    def confirm(self, compiled):
        return self._verdict(compiled, "confirm")


class TestViolationPath:
    @pytest.fixture()
    def stub_property(self):
        PROPERTY_CLASSES[_AlwaysViolated.name] = _AlwaysViolated
        try:
            yield _AlwaysViolated.name
        finally:
            PROPERTY_CLASSES.pop(_AlwaysViolated.name, None)

    def test_violations_are_classified_and_shrunk(self, stub_property):
        config = SearchConfig.smoke_config(
            stub_property, generations=1, population=5, top=2, seed=1
        )
        report = run_search(config)
        confirmed = [c for c in report.candidates if c.confirmed_violated]
        assert confirmed, "the stub property must produce confirmed violations"
        for candidate in confirmed:
            assert candidate.classification() in (
                IN_MODEL_VIOLATION,
                OUT_OF_MODEL_VIOLATION,
            )
        assert report.findings
        for finding in report.findings:
            assert finding.kind in (IN_MODEL_VIOLATION, OUT_OF_MODEL_VIOLATION)
            # The shrunk reproducer still violates: ten steps of process 1 is
            # the stub's minimal core, and cert-side preservation held.
            count = sum(1 for step in finding.schedule.steps if step == 1)
            assert count >= 10
            assert (finding.kind == IN_MODEL_VIOLATION) == finding.certificate.in_model

    def test_near_misses_are_only_reported_without_violations(self, stub_property):
        config = SearchConfig.smoke_config(
            stub_property, generations=1, population=5, top=2, seed=1
        )
        report = run_search(config)
        assert all(f.kind != NEAR_MISS for f in report.findings)


class TestReportTallies:
    def test_finding_counts_dedup_elites_across_generations(self):
        # An elite recipe is re-evaluated (from cache) every generation it
        # survives; the headline tallies must count distinct schedules, not
        # evaluations.
        config = SearchConfig.smoke_config("k-anti-omega-convergence", generations=5, seed=0)
        report = run_search(config)
        for pool in (report.near_misses(), report.violations(in_model=False)):
            signatures = [candidate.signature for candidate in pool]
            assert len(signatures) == len(set(signatures))
        evaluations = [
            c for c in report.candidates
            if not c.confirmed_violated and c.fitness >= config.near_miss_threshold
        ]
        assert len(evaluations) >= len(report.near_misses())


class TestCommandRoundTrip:
    def test_non_default_fields_appear_in_the_command(self):
        config = SearchConfig(
            property="agreement-safety", n=5, t=1, k=1, certify_bound=6,
            near_miss_threshold=0.9, top=1, generations=2, population=8,
            horizon=900, checkpoints=5, seed=4, fitness="timeliness-bound",
        )
        command = config.command()
        for expected in (
            "--property agreement-safety", "--n 5", "--t 1", "--k 1",
            "--certify-bound 6", "--near-miss-threshold 0.9", "--top 1",
            "--generations 2", "--population 8", "--horizon 900",
            "--checkpoints 5", "--seed 4", "--fitness timeliness-bound",
        ):
            assert expected in command, f"{expected!r} missing from {command!r}"

    def test_smoke_overrides_appear_in_the_command(self):
        config = SearchConfig.smoke_config(
            "k-anti-omega-convergence", generations=2, population=5, top=1, seed=1
        )
        command = config.command()
        assert "--smoke" in command
        assert "--generations 2" in command
        assert "--population 5" in command
        assert "--top 1" in command
        # Fields matching the smoke baseline stay implicit.
        assert "--horizon" not in command
