"""Tests for candidate recipes and mutation directives."""

import random
from array import array

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.spec import build_generator
from repro.search import (
    MUTATION_OPS,
    apply_mutation,
    describe_recipe,
    make_recipe,
    mutate_recipe,
    realize,
    recipe_signature,
    sample_mutation,
)

BASE = {
    "schedule": "set-timely",
    "n": 4,
    "t": 2,
    "k": 2,
    "p_set": [1, 2],
    "q_set": [1, 2, 3],
    "bound": 3,
    "seed": 7,
}


class TestRealize:
    def test_no_mutations_matches_generator_compile(self):
        recipe = make_recipe(BASE, 600)
        compiled = realize(recipe)
        direct = build_generator(BASE).compile(600)
        assert compiled.steps == direct.steps
        assert compiled.crash_steps == direct.crash_steps

    def test_deterministic(self):
        recipe = make_recipe(
            BASE, 600, [{"op": "burst", "pid": 4, "start": 100, "length": 80}]
        )
        first = realize(recipe)
        second = realize(recipe)
        assert first.steps == second.steps
        assert first.crash_steps == second.crash_steps

    def test_burst_overwrites_window(self):
        recipe = make_recipe(
            BASE, 400, [{"op": "burst", "pid": 4, "start": 50, "length": 30}]
        )
        steps = list(realize(recipe).steps)
        assert steps[50:80] == [4] * 30
        baseline = list(realize(make_recipe(BASE, 400)).steps)
        assert steps[:50] == baseline[:50]
        assert steps[80:] == baseline[80:]

    def test_silence_replaces_silenced_pids_in_window(self):
        recipe = make_recipe(
            BASE, 400, [{"op": "silence", "pids": [1, 2], "start": 100, "length": 200}]
        )
        steps = list(realize(recipe).steps)
        assert all(pid not in (1, 2) for pid in steps[100:300])
        # Length and universe preserved.
        assert len(steps) == 400
        assert all(1 <= pid <= 4 for pid in steps)

    def test_crash_records_metadata_and_buffer_is_consistent(self):
        recipe = make_recipe(BASE, 400, [{"op": "crash", "pid": 3, "at": 120}])
        compiled = realize(recipe)
        assert compiled.crash_steps[3] == 120
        assert all(pid != 3 for pid in list(compiled.steps)[120:])
        assert 3 in compiled.faulty

    def test_crash_consistency_enforced_after_resurrecting_burst(self):
        # The burst would schedule the crashed process after its crash step;
        # realize() must re-enforce the metadata invariant.
        recipe = make_recipe(
            BASE,
            400,
            [
                {"op": "crash", "pid": 3, "at": 100},
                {"op": "burst", "pid": 3, "start": 200, "length": 50},
            ],
        )
        compiled = realize(recipe)
        assert all(pid != 3 for pid in list(compiled.steps)[100:])

    def test_crash_never_kills_the_last_process(self):
        mutations = [{"op": "crash", "pid": pid, "at": 0} for pid in (1, 2, 3, 4)]
        compiled = realize(make_recipe(BASE, 200, mutations))
        assert len(compiled.faulty) == 3  # the fourth crash is refused

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            realize(make_recipe(BASE, 100, [{"op": "teleport"}]))

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            make_recipe(BASE, 0)

    def test_rotate_and_swap_preserve_step_multiset(self):
        baseline = sorted(realize(make_recipe(BASE, 300)).steps)
        for directive in (
            {"op": "rotate", "offset": 97},
            {"op": "swap", "first": 10, "second": 200, "length": 40},
        ):
            mutated = realize(make_recipe(BASE, 300, [directive]))
            assert sorted(mutated.steps) == baseline

    def test_signature_ignores_key_order(self):
        a = recipe_signature({"base": dict(BASE), "horizon": 100, "mutations": []})
        b = recipe_signature({"mutations": [], "horizon": 100, "base": dict(BASE)})
        assert a == b

    def test_describe_names_family_and_ops(self):
        recipe = make_recipe(BASE, 100, [{"op": "rotate", "offset": 3}])
        description = describe_recipe(recipe)
        assert "set-timely" in description
        assert "rotate" in description


class TestSampling:
    def test_sample_mutation_deterministic_for_fixed_seed(self):
        first = [sample_mutation(random.Random(5), 4, 1000, [1, 2]) for _ in range(1)]
        second = [sample_mutation(random.Random(5), 4, 1000, [1, 2]) for _ in range(1)]
        assert first == second

    def test_sampled_directives_always_realize(self):
        rng = random.Random(11)
        recipe = make_recipe(BASE, 500)
        for _ in range(40):
            recipe = mutate_recipe(recipe, rng, 4, extra=1, focus_pids=[1, 2])
        compiled = realize(recipe)
        assert len(compiled) == 500
        assert all(1 <= pid <= 4 for pid in compiled.steps)

    def test_sampled_ops_come_from_the_registry(self):
        rng = random.Random(3)
        for _ in range(30):
            directive = sample_mutation(rng, 4, 800)
            assert directive["op"] in MUTATION_OPS

    def test_mutate_recipe_appends_without_touching_the_parent(self):
        parent = make_recipe(BASE, 200)
        child = mutate_recipe(parent, random.Random(1), 4, extra=2)
        assert len(child["mutations"]) == 2
        assert parent["mutations"] == []


class TestApplyMutation:
    def test_silence_of_everyone_is_a_noop(self):
        steps = [1, 2, 3, 4] * 10
        before = list(steps)
        apply_mutation(steps, {}, 4, {"op": "silence", "pids": [1, 2, 3, 4], "start": 0, "length": 40})
        assert steps == before

    def test_windows_are_clamped_into_the_buffer(self):
        steps = [1, 2, 3, 4]
        apply_mutation(steps, {}, 4, {"op": "burst", "pid": 2, "start": 999, "length": 50})
        assert steps[-1] == 2

    def test_burst_outside_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_mutation([1, 2], {}, 2, {"op": "burst", "pid": 9, "start": 0, "length": 1})
