"""The benchmark trajectory: file round-trips, regression gate, CLI wiring.

The actual measurement suites run in CI (``repro bench --smoke``) and in
``benchmarks/``; these tests pin the machinery around them — document shape,
the ratio-based regression check, markdown rendering, and the committed
baseline files at the repository root — without re-measuring anything slow.
"""

import json
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_CAMPAIGN_FILENAME,
    BENCH_KERNEL_FILENAME,
    check_regression,
    load_trajectory,
    machine_info,
    performance_markdown,
)
from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def committed_trajectory():
    return load_trajectory(REPO_ROOT)


class TestCommittedBaseline:
    def test_trajectory_files_are_committed_at_repo_root(self):
        assert (REPO_ROOT / BENCH_KERNEL_FILENAME).exists()
        assert (REPO_ROOT / BENCH_CAMPAIGN_FILENAME).exists()

    def test_kernel_document_shape_and_headline_win(self, committed_trajectory):
        kernel_doc, _ = committed_trajectory
        assert kernel_doc["suite"] == "kernel"
        assert {"platform", "python", "cpu_count"} <= set(kernel_doc["machine"])
        for workload in ("floor", "fresh-ops"):
            cases = kernel_doc["workloads"][workload]
            for case in (
                "instrumented",
                "fast-stream",
                "fast-compiled",
                "fast-stream-bare",
                "batch-compiled-bare",
            ):
                assert cases[case]["ns_per_step"] > 0
                assert cases[case]["speedup_vs_instrumented"] > 0
        # The acceptance bar this PR pins: >= 2x for the bare batched loop
        # over the per-run fast path on the no-observer configuration.
        assert kernel_doc["headline"]["batched_vs_fast_stream"] >= 2.0

    def test_campaign_document_shape(self, committed_trajectory):
        _, campaign_doc = committed_trajectory
        assert campaign_doc["suite"] == "campaign"
        assert campaign_doc["payloads_identical"] is True
        for case in campaign_doc["cases"].values():
            assert case["seconds"] > 0 and case["ns_per_step"] > 0
        assert campaign_doc["headline"]["batched_vs_stream"] > 1.0


class TestRegressionCheck:
    def test_committed_baseline_passes_against_itself(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        assert check_regression(kernel_doc, campaign_doc, REPO_ROOT) == []

    def test_ratio_regression_beyond_tolerance_fails(self, committed_trajectory, tmp_path):
        kernel_doc, campaign_doc = committed_trajectory
        regressed = json.loads(json.dumps(kernel_doc))
        regressed["headline"]["batched_vs_fast_stream"] = (
            kernel_doc["headline"]["batched_vs_fast_stream"] * 0.5
        )
        failures = check_regression(regressed, campaign_doc, REPO_ROOT)
        assert len(failures) == 1 and "kernel headline" in failures[0]

    def test_small_wobble_within_tolerance_passes(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        wobbly = json.loads(json.dumps(kernel_doc))
        wobbly["headline"]["batched_vs_fast_stream"] = (
            kernel_doc["headline"]["batched_vs_fast_stream"] * 0.9
        )
        assert check_regression(wobbly, campaign_doc, REPO_ROOT) == []

    def test_payload_divergence_fails(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        broken = json.loads(json.dumps(campaign_doc))
        broken["payloads_identical"] = False
        failures = check_regression(kernel_doc, broken, REPO_ROOT)
        assert any("payloads differ" in failure for failure in failures)


class TestReporting:
    def test_markdown_tables_render_from_trajectory(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        markdown = performance_markdown(kernel_doc, campaign_doc)
        assert "| batch-compiled-bare |" in markdown
        assert "| campaign-batched |" in markdown
        assert "Headline:" in markdown

    def test_machine_info_is_json_serializable(self):
        info = machine_info()
        assert json.dumps(info)
        assert info["cpu_count"] >= 1


class TestCliWiring:
    def test_bench_subcommand_parses_all_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["bench", "--smoke", "--out", "somewhere", "--check", "baseline"]
        )
        assert args.smoke and args.out == "somewhere" and args.check == "baseline"
        args = parser.parse_args(["bench", "--check"])
        assert args.check == "."
        args = parser.parse_args(["bench"])
        assert args.check is None and args.out == "."

    def test_bench_markdown_renders_committed_trajectory(self):
        from repro.cli import run

        lines = run(["bench", "--markdown", "--out", str(REPO_ROOT)])
        assert "| batch-compiled-bare |" in lines[0]
