"""The benchmark trajectory: file round-trips, regression gate, CLI wiring.

The actual measurement suites run in CI (``repro bench --smoke``) and in
``benchmarks/``; these tests pin the machinery around them — document shape,
the ratio-based regression check, markdown rendering, and the committed
baseline files at the repository root — without re-measuring anything slow.
"""

import json
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_CAMPAIGN_FILENAME,
    BENCH_KERNEL_FILENAME,
    check_regression,
    load_trajectory,
    machine_info,
    performance_markdown,
)
from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def committed_trajectory():
    return load_trajectory(REPO_ROOT)


class TestCommittedBaseline:
    def test_trajectory_files_are_committed_at_repo_root(self):
        assert (REPO_ROOT / BENCH_KERNEL_FILENAME).exists()
        assert (REPO_ROOT / BENCH_CAMPAIGN_FILENAME).exists()

    def test_kernel_document_shape_and_headline_win(self, committed_trajectory):
        kernel_doc, _ = committed_trajectory
        assert kernel_doc["suite"] == "kernel"
        assert {"platform", "python", "cpu_count"} <= set(kernel_doc["machine"])
        for workload in ("floor", "fresh-ops", "bound-ops"):
            cases = kernel_doc["workloads"][workload]
            for case in (
                "instrumented",
                "fast-stream",
                "fast-compiled",
                "fast-stream-bare",
                "batch-compiled-bare",
            ):
                assert cases[case]["ns_per_step"] > 0
                assert cases[case]["speedup_vs_instrumented"] > 0
        # The acceptance bars pinned by the batched-execution and
        # slot-addressed-pipeline PRs: >= 2x batched-vs-per-run on the floor
        # workload, >= 1.5x on the fresh-operation workload.
        assert kernel_doc["headline"]["batched_vs_fast_stream"] >= 2.0
        assert kernel_doc["headline"]["fresh_ops_batched_vs_fast_stream"] >= 1.5

    def test_campaign_document_shape(self, committed_trajectory):
        _, campaign_doc = committed_trajectory
        assert campaign_doc["suite"] == "campaign"
        assert campaign_doc["payloads_identical"] is True
        assert campaign_doc["search_eval_payloads_identical"] is True
        for name, case in campaign_doc["cases"].items():
            rate = case.get("ns_per_step", case.get("us_per_candidate"))
            assert case["seconds"] > 0 and rate > 0, name
        assert campaign_doc["headline"]["batched_vs_stream"] > 1.0
        assert campaign_doc["headline"]["search_eval_auto_vs_python"] > 0

    def test_kernel_screen_lane_committed_and_gated(self, committed_trajectory):
        from repro.bench import SCREEN_HEADLINE_FLOOR

        kernel_doc, _ = committed_trajectory
        screen_doc = kernel_doc["screen"]
        assert screen_doc["verdicts_identical"] is True
        assert screen_doc["cases"]["vector-screen"]["seconds"] > 0
        # ISSUE 8's acceptance bar: the committed whole-generation screening
        # headline clears the absolute floor.
        headline = kernel_doc["headline"]["vector_screen_vs_reference_screen"]
        assert headline >= SCREEN_HEADLINE_FLOOR >= 5.0


class TestRegressionCheck:
    def test_committed_baseline_passes_against_itself(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        assert check_regression(kernel_doc, campaign_doc, REPO_ROOT) == []

    def test_ratio_regression_beyond_tolerance_fails(self, committed_trajectory, tmp_path):
        kernel_doc, campaign_doc = committed_trajectory
        regressed = json.loads(json.dumps(kernel_doc))
        regressed["headline"]["batched_vs_fast_stream"] = (
            kernel_doc["headline"]["batched_vs_fast_stream"] * 0.5
        )
        failures = check_regression(regressed, campaign_doc, REPO_ROOT)
        assert len(failures) == 1 and "kernel headline" in failures[0]

    def test_small_wobble_within_tolerance_passes(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        wobbly = json.loads(json.dumps(kernel_doc))
        wobbly["headline"]["batched_vs_fast_stream"] = (
            kernel_doc["headline"]["batched_vs_fast_stream"] * 0.9
        )
        assert check_regression(wobbly, campaign_doc, REPO_ROOT) == []

    def test_fresh_ops_headline_regression_fails(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        regressed = json.loads(json.dumps(kernel_doc))
        regressed["headline"]["fresh_ops_batched_vs_fast_stream"] = (
            kernel_doc["headline"]["fresh_ops_batched_vs_fast_stream"] * 0.5
        )
        failures = check_regression(regressed, campaign_doc, REPO_ROOT)
        assert len(failures) == 1
        assert "fresh_ops_batched_vs_fast_stream" in failures[0]

    def test_headline_key_missing_from_baseline_is_skipped(
        self, committed_trajectory, tmp_path
    ):
        # A baseline from before a headline was promoted cannot gate it; the
        # first regenerated baseline that records the key starts the gate.
        from repro.bench import compare_trajectories

        kernel_doc, campaign_doc = committed_trajectory
        old_baseline = json.loads(json.dumps(kernel_doc))
        del old_baseline["headline"]["fresh_ops_batched_vs_fast_stream"]
        fresh = json.loads(json.dumps(kernel_doc))
        fresh["headline"]["fresh_ops_batched_vs_fast_stream"] = 0.1
        assert compare_trajectories(fresh, campaign_doc, old_baseline, campaign_doc) == []

    def test_payload_divergence_fails(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        broken = json.loads(json.dumps(campaign_doc))
        broken["payloads_identical"] = False
        failures = check_regression(kernel_doc, broken, REPO_ROOT)
        assert any("payloads differ" in failure for failure in failures)

    def test_screen_headline_below_absolute_floor_fails(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        slow = json.loads(json.dumps(kernel_doc))
        slow["headline"]["vector_screen_vs_reference_screen"] = 4.9
        failures = check_regression(slow, campaign_doc, REPO_ROOT)
        assert any("vector_screen_vs_reference_screen" in f for f in failures)
        assert any("absolute floor" in f for f in failures)

    def test_screen_verdict_divergence_fails(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        broken = json.loads(json.dumps(kernel_doc))
        broken["screen"]["verdicts_identical"] = False
        failures = check_regression(broken, campaign_doc, REPO_ROOT)
        assert any("verdicts differ" in failure for failure in failures)

    def test_search_eval_payload_divergence_fails(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        broken = json.loads(json.dumps(campaign_doc))
        broken["search_eval_payloads_identical"] = False
        failures = check_regression(kernel_doc, broken, REPO_ROOT)
        assert any("search-eval payloads" in failure for failure in failures)

    def test_mode_sensitive_screen_gate_skips_cross_mode(self, committed_trajectory):
        # A smoke re-measurement of the screening lane is not relative-gated
        # against a full-mode baseline (the ratio moves structurally with the
        # batch size), but the absolute floor still applies.
        from repro.bench import compare_trajectories

        kernel_doc, campaign_doc = committed_trajectory
        fresh = json.loads(json.dumps(kernel_doc))
        fresh["config"]["smoke"] = not kernel_doc["config"].get("smoke", False)
        fresh["headline"]["vector_screen_vs_reference_screen"] = 5.1
        assert (
            compare_trajectories(fresh, campaign_doc, kernel_doc, campaign_doc) == []
        )


class TestReporting:
    def test_markdown_tables_render_from_trajectory(self, committed_trajectory):
        kernel_doc, campaign_doc = committed_trajectory
        markdown = performance_markdown(kernel_doc, campaign_doc)
        assert "| batch-compiled-bare |" in markdown
        assert "| campaign-batched |" in markdown
        assert "Headline:" in markdown
        assert "Fresh-ops headline:" in markdown
        assert "bound-ops ns/step" in markdown

    def test_machine_info_is_json_serializable(self):
        info = machine_info()
        assert json.dumps(info)
        assert info["cpu_count"] >= 1


class TestCliWiring:
    def test_bench_subcommand_parses_all_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["bench", "--smoke", "--out", "somewhere", "--check", "baseline"]
        )
        assert args.smoke and args.out == "somewhere" and args.check == "baseline"
        args = parser.parse_args(["bench", "--check"])
        assert args.check == "."
        args = parser.parse_args(["bench"])
        assert args.check is None and args.out == "." and args.workload is None
        args = parser.parse_args(
            ["bench", "--workload", "fresh-ops", "--workload", "bound-ops"]
        )
        assert args.workload == ["fresh-ops", "bound-ops"]

    def test_workload_filter_rejects_check_and_markdown(self):
        from repro.cli import run

        with pytest.raises(SystemExit):
            run(["bench", "--workload", "floor", "--check", "."])
        with pytest.raises(SystemExit):
            run(["bench", "--workload", "floor", "--markdown"])

    def test_unknown_workload_rejected(self):
        from repro.bench import bench_kernel
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown workload"):
            bench_kernel(smoke=True, workloads=["nope"])

    def test_bench_markdown_renders_committed_trajectory(self):
        from repro.cli import run

        lines = run(["bench", "--markdown", "--out", str(REPO_ROOT)])
        assert "| batch-compiled-bare |" in lines[0]
