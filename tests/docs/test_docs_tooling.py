"""Tier-1 mirrors of the CI documentation gates.

CI runs ``python -m doctest docs/GUIDE.md`` and
``python tools/docstring_gate.py src/repro/search`` as separate workflow
steps; these tests run the same checks from the test suite so a failure is
caught locally before any push.
"""

import doctest
import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_guide_doctests_pass():
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "GUIDE.md"), module_relative=False, verbose=False
    )
    assert results.attempted > 10, "GUIDE.md lost its executable examples"
    assert results.failed == 0


def test_search_subsystem_docstring_coverage():
    spec = importlib.util.spec_from_file_location(
        "docstring_gate", REPO_ROOT / "tools" / "docstring_gate.py"
    )
    gate = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(gate)
    missing = gate.check([REPO_ROOT / "src" / "repro" / "search"])
    formatted = "\n".join(
        f"{path}:{line}: {kind} {name}" for path, line, kind, name in missing
    )
    assert not missing, f"undocumented public definitions:\n{formatted}"


def test_counterexample_atlas_names_regenerating_commands():
    atlas = (REPO_ROOT / "docs" / "COUNTEREXAMPLES.md").read_text(encoding="utf-8")
    # Every atlas entry must carry the exact command that regenerates it.
    assert atlas.count("repro search --property") >= 2
    assert "out of model" in atlas
    assert "in-model" in atlas
