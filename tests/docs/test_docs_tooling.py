"""Tier-1 mirrors of the CI documentation gates.

CI runs ``python -m doctest docs/GUIDE.md`` and
``python tools/docstring_gate.py src/repro/search`` as separate workflow
steps; these tests run the same checks from the test suite so a failure is
caught locally before any push.
"""

import doctest
import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_guide_doctests_pass():
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "GUIDE.md"), module_relative=False, verbose=False
    )
    assert results.attempted > 10, "GUIDE.md lost its executable examples"
    assert results.failed == 0


def _docstring_gate():
    spec = importlib.util.spec_from_file_location(
        "docstring_gate", REPO_ROOT / "tools" / "docstring_gate.py"
    )
    gate = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(gate)
    return gate


def _assert_fully_documented(targets):
    missing = _docstring_gate().check(targets)
    formatted = "\n".join(
        f"{path}:{line}: {kind} {name}" for path, line, kind, name in missing
    )
    assert not missing, f"undocumented public definitions:\n{formatted}"


def test_search_subsystem_docstring_coverage():
    _assert_fully_documented([REPO_ROOT / "src" / "repro" / "search"])


def test_execution_backend_docstring_coverage():
    # Same gate CI runs: the backend registry and the vector column backend
    # are public API surface and must stay fully documented.
    _assert_fully_documented(
        [
            REPO_ROOT / "src" / "repro" / "runtime" / "backends.py",
            REPO_ROOT / "src" / "repro" / "runtime" / "vector_backend.py",
        ]
    )


def test_durable_queue_docstring_coverage():
    # Same gate CI runs: the durable campaign service (queue + chaos harness)
    # is public API surface and must stay fully documented.
    _assert_fully_documented(
        [
            REPO_ROOT / "src" / "repro" / "campaign" / "queue.py",
            REPO_ROOT / "src" / "repro" / "campaign" / "faults.py",
        ]
    )


def test_distsim_docstring_coverage():
    # Same gate CI runs: the message-passing discrete-event tier (engine,
    # latency models, workload families, timeline→schedule reduction) is
    # public API surface and must stay fully documented.
    _assert_fully_documented([REPO_ROOT / "src" / "repro" / "distsim"])


def test_backend_module_doctests_pass():
    # CI's "Backend module doctests" step, mirrored in tier-1: the registry
    # examples must pass with and without numpy (they never import it).
    import repro.runtime.backends as backends_module
    import repro.runtime.vector_backend as vector_module

    for module in (backends_module, vector_module):
        results = doctest.testmod(module, verbose=False)
        assert results.attempted >= 1, f"{module.__name__} lost its examples"
        assert results.failed == 0


def test_counterexample_atlas_names_regenerating_commands():
    atlas = (REPO_ROOT / "docs" / "COUNTEREXAMPLES.md").read_text(encoding="utf-8")
    # Every atlas entry must carry the exact command that regenerates it.
    assert atlas.count("repro search --property") >= 2
    assert "out of model" in atlas
    assert "in-model" in atlas
