"""Tests for the analysis layer: reporting, timeliness matrices, metrics, experiments."""

import pytest

from repro.analysis.experiment import (
    accusation_ablation_experiment,
    agreement_experiment,
    anti_omega_convergence_experiment,
    figure1_experiment,
    separation_experiment,
    separation_statements_experiment,
    solvability_map_experiment,
    timeout_ablation_experiment,
)
from repro.analysis.metrics import run_detector_experiment
from repro.analysis.reporting import ascii_table, bullet_list, format_cell, render_solvability_grid
from repro.analysis.timeliness_matrix import (
    best_set_witnesses,
    pairwise_timeliness,
    timely_sets_of_size,
)
from repro.core.schedule import Schedule
from repro.core.solvability import solvability_grid
from repro.schedules.round_robin import RoundRobinGenerator
from repro.schedules.set_timely import SetTimelyGenerator
from repro.types import AgreementInstance


class TestReporting:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(1.23456) == "1.235"
        assert format_cell(frozenset({2, 1})) == "{1,2}"
        assert format_cell((1, 2)) == "(1,2)"

    def test_ascii_table_structure(self):
        table = ascii_table(["a", "bb"], [[1, 2], [3, None]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("+-")
        assert "| a" in lines[2]
        assert table.count("|") == 9  # 3 separators per line, 3 content lines

    def test_render_solvability_grid(self):
        grid = solvability_grid(AgreementInstance(t=2, k=2, n=4))
        rendered = render_solvability_grid(grid, n=4)
        assert "S" in rendered and "." in rendered
        assert rendered.count("j=") == 4

    def test_bullet_list(self):
        assert bullet_list(["one", "two"]) == "  - one\n  - two"


class TestTimelinessMatrix:
    def test_pairwise_matrix(self):
        schedule = Schedule(steps=(1, 2, 3) * 30, n=3)
        matrix = pairwise_timeliness(schedule)
        assert matrix.bound(1, 2) <= 3
        assert matrix.most_timely_process() in {1, 2, 3}
        assert len(matrix.rows()) == 3

    def test_best_set_witnesses(self):
        schedule = Schedule(steps=(1, 3, 2, 3) * 30, n=3)
        witnesses = best_set_witnesses(schedule, [(1, 1), (1, 2)])
        assert set(witnesses) == {(1, 1), (1, 2)}
        assert witnesses[(1, 2)].bound <= 2
        assert witnesses[(1, 1)].bound <= 2
        assert len(witnesses[(1, 2)].p_set) == 1
        assert len(witnesses[(1, 2)].q_set) == 2

    def test_timely_sets_of_size(self):
        schedule = Schedule(steps=(1, 2, 3) * 30, n=3)
        assert len(timely_sets_of_size(schedule, 1, bound=3)) == 3
        lopsided = Schedule(steps=(1,) * 50 + (2,) * 50, n=3)
        assert timely_sets_of_size(lopsided, 1, bound=3) == []


class TestMetrics:
    def test_detector_report_fields(self):
        generator = RoundRobinGenerator(3)
        report = run_detector_experiment(generator, t=2, k=2, horizon=5_000)
        assert report.satisfied
        assert report.stabilized_early
        assert report.winner_contains_correct
        assert report.n == 3 and report.k == 2 and report.horizon == 5_000

    def test_horizon_validated(self):
        with pytest.raises(Exception):
            run_detector_experiment(RoundRobinGenerator(3), t=2, k=2, horizon=0)


class TestExperimentHarnesses:
    """Smoke tests with tiny parameters: the harnesses must run and produce
    well-formed rows; the full-size numbers live in benchmarks/EXPERIMENTS.md."""

    def test_figure1(self):
        headers, rows = figure1_experiment(blocks=(2, 4))
        assert len(headers) == 5 and len(rows) == 2
        assert rows[0][4] <= 2  # the set bound stays 2

    def test_anti_omega_convergence(self):
        configs = [{"n": 3, "t": 2, "k": 2, "bound": 3, "crashes": frozenset()}]
        headers, rows = anti_omega_convergence_experiment(configs=configs, horizon=8_000)
        assert len(rows) == 1
        assert rows[0][4] is True  # satisfied

    def test_agreement(self):
        configs = [
            {"n": 3, "t": 2, "k": 2, "crashes": frozenset()},
            {"n": 4, "t": 1, "k": 2, "crashes": frozenset()},
        ]
        headers, rows = agreement_experiment(configs=configs, horizon=200_000)
        assert len(rows) == 2
        for row in rows:
            assert row[4] is True  # all correct decided
            assert row[6] is True  # valid

    def test_separation(self):
        headers, rows = separation_experiment(k=2, horizons=(10_000,))
        assert len(rows) == 2
        by_degree = {row[0]: row for row in rows}
        assert by_degree[2][5] is True   # degree k stabilizes early
        assert by_degree[1][5] is False  # degree k-1 keeps churning

    def test_solvability_map_and_statements(self):
        grids = solvability_map_experiment(problems=((2, 2, 4),))
        assert len(grids) == 1
        headers, rows = separation_statements_experiment(problems=((2, 2, 4),))
        assert all(row[3] is True for row in rows)

    def test_ablations_smoke(self):
        headers, rows = accusation_ablation_experiment(horizon=12_000)
        assert {row[1] for row in rows} >= {"min", "max"}
        crashed_rows = {row[1]: row for row in rows if row[0] == "crashed-min-set"}
        assert crashed_rows["paper (t+1)-st smallest"][4] is True   # contains correct
        assert crashed_rows["min"][4] is False                       # min converges to the dead set
        headers, rows = timeout_ablation_experiment(horizon=30_000, bound=200)
        assert len(rows) == 3
