"""Tests for the command-line interface (`python -m repro`)."""

import pytest

from repro import __version__
from repro.cli import CAMPAIGNS, EXPERIMENTS, build_parser, run
from repro.scenarios import available_families


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        help_text = parser.format_help()
        for name in EXPERIMENTS:
            assert name in help_text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["does-not-exist"])


class TestCommands:
    def test_default_is_list(self):
        lines = run([])
        assert lines[0].startswith("available experiments")
        assert any("figure1" in line for line in lines)

    def test_list(self):
        lines = run(["list"])
        assert len(lines) == len(EXPERIMENTS) + len(CAMPAIGNS) + 2
        assert any("campaign" in line for line in lines)

    def test_figure1(self):
        lines = run(["figure1", "--blocks", "2", "4"])
        assert "bound {p1,p2} vs {q}" in lines[0]

    def test_map(self):
        lines = run(["map", "--t", "2", "--k", "2", "--n", "4"])
        output = "\n".join(lines)
        assert "Theorem 27 map" in output
        assert "S^2_{3,4}" in output          # matching system
        assert "frontier" in output

    def test_separations(self):
        lines = run(["separations"])
        assert "oracle consistent" in lines[0]

    def test_detector_small_horizon(self):
        lines = run(["detector", "--horizon", "8000"])
        assert "stabilization step" in lines[0]

    def test_solve_small_instance(self):
        lines = run(["solve", "--t", "2", "--k", "2", "--n", "3", "--max-steps", "200000"])
        output = "\n".join(lines)
        assert "satisfied: True" in output
        assert "decisions:" in output

    def test_solve_trivial_case(self):
        lines = run(["solve", "--t", "1", "--k", "2", "--n", "3", "--max-steps", "50000"])
        output = "\n".join(lines)
        assert "trivial" in output
        assert "satisfied: True" in output


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_version_matches_pyproject(self):
        # Guards both resolution paths — installed distribution metadata and
        # the source-tree pyproject.toml read — against drifting from
        # pyproject.toml, the single source of truth.
        import re
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        match = re.search(r'^version = "([^"]+)"', pyproject.read_text(), re.MULTILINE)
        assert match is not None
        assert __version__ == match.group(1)


class TestScenariosCommand:
    def test_listing_names_every_family(self):
        lines = run(["scenarios"])
        output = "\n".join(lines)
        for name in available_families():
            assert name in output
        assert "with_crashes" in output  # combinators are advertised too

    def test_run_one_family_prints_census_and_detector_tables(self):
        lines = run(
            [
                "scenarios",
                "crash-churn",
                "--n", "3",
                "--t", "1",
                "--k", "1",
                "--horizon", "3000",
                "--seed", "9",
                "--set", "period=32",
                "--set", "outage=8",
            ]
        )
        output = "\n".join(lines)
        assert "crash-recovery churn (period=32, outage=8" in output
        assert "schedule census" in output
        assert "k-anti-Ω on this scenario" in output

    def test_set_values_parse_lists_and_perturbations_apply(self):
        lines = run(
            [
                "scenarios",
                "spliced-adversary",
                "--n", "3",
                "--t", "1",
                "--k", "1",
                "--horizon", "2000",
                "--set", "carriers=1,2",
                "--set", "switch_at=500",
                "--perturb", "noise:0.05:3",
            ]
        )
        output = "\n".join(lines)
        assert "carriers=[1, 2]" in output
        assert "perturb(noise, rate=0.05, seed=3)" in output

    def test_set_n_override_drives_the_census(self):
        lines = run(
            ["scenarios", "round-robin", "--set", "n=6", "--horizon", "1000",
             "--t", "2", "--k", "2"]
        )
        output = "\n".join(lines)
        assert "round-robin over [1, 2, 3, 4, 5, 6]" in output
        assert "| 6       |" in output  # census covers the overridden Πn

    def test_empty_set_value_rejected_cleanly(self):
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            run(["scenarios", "crash-churn", "--set", "period="])

    def test_single_valued_set_parameter_coerced_to_list(self):
        lines = run(
            [
                "scenarios",
                "carrier-rotation",
                "--n", "2",
                "--t", "1",
                "--k", "1",
                "--horizon", "1000",
                "--set", "carriers=1",
            ]
        )
        assert any("carriers=[1]" in line for line in lines)

    def test_bad_assignment_and_bad_perturbation_rejected(self):
        with pytest.raises(SystemExit):
            run(["scenarios", "crash-churn", "--set", "period"])
        with pytest.raises(SystemExit):
            run(["scenarios", "crash-churn", "--perturb", ""])
        with pytest.raises(SystemExit, match="numeric RATE"):
            run(["scenarios", "crash-churn", "--perturb", "noise:"])
        with pytest.raises(SystemExit, match="numeric RATE"):
            run(["scenarios", "crash-churn", "--perturb", "noise:0.1:x"])


class TestScenariosCampaign:
    def test_campaign_scenarios_small_horizon(self):
        lines = run(["campaign", "scenarios", "--horizon", "3000"])
        output = "\n".join(lines)
        assert "scenario family" in output
        assert "crash-recovery churn" in output
        assert "spliced adversarial suffix" in output


class TestEpilogs:
    def test_every_subcommand_epilog_names_its_experiments_md_section(self):
        # The satellite audit: every subcommand's --help must point at the
        # EXPERIMENTS.md section it regenerates.
        import argparse

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        assert set(subparsers.choices), "no subcommands registered"
        for name, subparser in subparsers.choices.items():
            assert subparser.epilog, f"subcommand {name!r} has no --help epilog"
            assert "EXPERIMENTS.md" in subparser.epilog, (
                f"subcommand {name!r} epilog does not name its EXPERIMENTS.md section"
            )
            assert "EXPERIMENTS.md" in subparser.format_help()


class TestQueueCommands:
    def test_enqueue_work_status_roundtrip(self, tmp_path):
        db = str(tmp_path / "q.db")
        lines = run(["queue", "enqueue", "e1", "--db", db])
        assert "4 new job(s)" in lines[0]
        lines = run(["queue", "enqueue", "e1", "--db", db])  # idempotent
        assert "0 new job(s)" in lines[0]
        lines = run(["queue", "work", "--db", db, "--worker-id", "t1"])
        assert "completed 4" in lines[0]
        lines = run(["queue", "status", "--db", db])
        assert "done=4" in lines[0]

    def test_drain_completes_the_queue(self, tmp_path):
        db = str(tmp_path / "q.db")
        run(["queue", "enqueue", "e1", "--db", db])
        lines = run(["queue", "drain", "--db", db, "--workers", "2"])
        assert "0 death(s)" in lines[0]
        assert any("done=4" in line for line in lines)

    def test_missing_database_is_a_clean_error(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="no queue database"):
            run(["queue", "status", "--db", str(tmp_path / "absent.db")])

    def test_chaos_flags_require_resume(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="--resume"):
            run(["campaign", "e1", "--chaos-kills", "1"])

    def test_campaign_resume_resumes(self, tmp_path):
        db = str(tmp_path / "c.db")
        first = run(["campaign", "e1", "--resume", db, "--workers", "2"])
        assert any("4 new job(s)" in line for line in first)
        second = run(["campaign", "e1", "--resume", db])
        assert any("4 already done" in line for line in second)


class TestSearchCommand:
    def test_list_properties(self):
        lines = run(["search", "--list-properties"])
        output = "\n".join(lines)
        for name in ("k-anti-omega-convergence", "leader-set-convergence", "agreement-safety"):
            assert name in output

    def test_unknown_property_rejected(self):
        with pytest.raises(SystemExit):
            run(["search", "--property", "no-such-claim", "--smoke"])

    def test_smoke_search_reports_no_in_model_violations(self):
        lines = run(["search", "--smoke", "--generations", "2", "--seed", "3"])
        output = "\n".join(lines)
        assert "in-model violations: 0" in output
        assert "falsification attempts against k-anti-omega-convergence" in output

    def test_smoke_search_emits_a_regenerable_shrunk_finding(self):
        # The acceptance-criterion invocation, minus three generations for
        # speed: the full five-generation run is pinned by tests/search.
        lines = run(["search", "--property", "k-anti-omega-convergence",
                     "--generations", "3", "--smoke"])
        output = "\n".join(lines)
        assert "finding 1 [" in output
        assert "regenerate: repro search --property k-anti-omega-convergence" in output

    def test_search_jsonl_records(self, tmp_path):
        import json

        path = tmp_path / "search.jsonl"
        run(["search", "--smoke", "--generations", "2", "--jsonl", str(path)])
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(record["record"] == "candidate" for record in records)

    def test_e11_table(self):
        lines = run(["search", "--table", "--generations", "2"])
        output = "\n".join(lines)
        assert "E11" in output
        assert "in-model violations" in output
        assert "agreement-safety" in output

    def test_table_rejects_single_search_flags(self):
        with pytest.raises(SystemExit) as excinfo:
            run(["search", "--table", "--jsonl", "out.jsonl"])
        assert "--jsonl" in str(excinfo.value)
        with pytest.raises(SystemExit):
            run(["search", "--table", "--property", "agreement-safety"])
        with pytest.raises(SystemExit):
            run(["search", "--table", "--smoke"])

    def test_degenerate_horizon_rejected_cleanly(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run(["search", "--horizon", "1", "--generations", "2"])


class TestBenchCommand:
    def test_unknown_workload_exits_cleanly_listing_choices(self):
        # The console entry point turns the library's ConfigurationError into
        # a one-line SystemExit naming every valid workload, not a traceback.
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--workload", "nope"])
        message = str(excinfo.value)
        assert "unknown workload" in message
        for name in ("floor", "fresh-ops", "bound-ops"):
            assert name in message

    def test_unknown_backend_exits_cleanly_listing_choices(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--workload", "floor", "--backend", "banana"])
        message = str(excinfo.value)
        assert "unknown execution backend" in message
        assert "python" in message and "vector" in message

    def test_run_still_raises_configuration_error_for_library_callers(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run(["bench", "--workload", "nope"])
