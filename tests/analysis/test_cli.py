"""Tests for the command-line interface (`python -m repro`)."""

import pytest

from repro.cli import CAMPAIGNS, EXPERIMENTS, build_parser, run


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        help_text = parser.format_help()
        for name in EXPERIMENTS:
            assert name in help_text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["does-not-exist"])


class TestCommands:
    def test_default_is_list(self):
        lines = run([])
        assert lines[0].startswith("available experiments")
        assert any("figure1" in line for line in lines)

    def test_list(self):
        lines = run(["list"])
        assert len(lines) == len(EXPERIMENTS) + len(CAMPAIGNS) + 2
        assert any("campaign" in line for line in lines)

    def test_figure1(self):
        lines = run(["figure1", "--blocks", "2", "4"])
        assert "bound {p1,p2} vs {q}" in lines[0]

    def test_map(self):
        lines = run(["map", "--t", "2", "--k", "2", "--n", "4"])
        output = "\n".join(lines)
        assert "Theorem 27 map" in output
        assert "S^2_{3,4}" in output          # matching system
        assert "frontier" in output

    def test_separations(self):
        lines = run(["separations"])
        assert "oracle consistent" in lines[0]

    def test_detector_small_horizon(self):
        lines = run(["detector", "--horizon", "8000"])
        assert "stabilization step" in lines[0]

    def test_solve_small_instance(self):
        lines = run(["solve", "--t", "2", "--k", "2", "--n", "3", "--max-steps", "200000"])
        output = "\n".join(lines)
        assert "satisfied: True" in output
        assert "decisions:" in output

    def test_solve_trivial_case(self):
        lines = run(["solve", "--t", "1", "--k", "2", "--n", "3", "--max-steps", "50000"])
        output = "\n".join(lines)
        assert "trivial" in output
        assert "satisfied: True" in output
