"""Tests for the campaign engine: dedup, caching, dispatch, record streaming."""

import pytest

from repro.analysis.experiment import detector_campaign_spec, detector_rows
from repro.analysis.reporting import ascii_table
from repro.campaign import (
    CampaignEngine,
    CampaignSpec,
    ResultCache,
    read_jsonl,
    register_kind,
)
from repro.errors import ConfigurationError

HORIZON = 6_000


def _small_spec(seed: int = 11) -> CampaignSpec:
    configs = [
        {"n": 3, "t": 2, "k": 1, "bound": 3, "crashes": frozenset()},
        {"n": 3, "t": 2, "k": 2, "bound": 3, "crashes": frozenset()},
        {"n": 4, "t": 2, "k": 2, "bound": 3, "crashes": frozenset()},
    ]
    return detector_campaign_spec(configs=configs, horizon=HORIZON, seed=seed)


def _comparable(records):
    """Record fields that must be invariant across worker counts and caching."""
    return [(r.index, r.key, r.kind, r.params, r.payload) for r in records]


class TestEngineBasics:
    def test_serial_run_produces_grid_ordered_records(self):
        result = CampaignEngine(workers=1).run(_small_spec())
        assert [r.index for r in result.records] == [0, 1, 2]
        assert all(r.kind == "detector" for r in result.records)
        assert all(r.payload["satisfied"] for r in result.records)

    def test_worker_count_invariance(self):
        serial = CampaignEngine(workers=1).run(_small_spec())
        parallel = CampaignEngine(workers=3).run(_small_spec())
        assert _comparable(serial.records) == _comparable(parallel.records)
        assert ascii_table(*detector_rows(serial)) == ascii_table(*detector_rows(parallel))

    def test_chunk_size_invariance(self):
        one = CampaignEngine(workers=2, chunk_size=1).run(_small_spec())
        all_in_one = CampaignEngine(workers=2, chunk_size=3).run(_small_spec())
        assert _comparable(one.records) == _comparable(all_in_one.records)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignEngine(workers=-1)
        with pytest.raises(ConfigurationError):
            CampaignEngine(chunk_size=0)
        with pytest.raises(ConfigurationError):
            CampaignEngine().run(CampaignSpec(name="x", kind="no-such-kind"))


class TestDeduplication:
    def test_repeated_configs_execute_once(self):
        spec = _small_spec()
        doubled = CampaignSpec(
            name="doubled", kind=spec.kind, runs=list(spec.runs) + list(spec.runs)
        )
        result = CampaignEngine(workers=1).run(doubled)
        assert len(result.records) == 6
        assert result.deduplicated == 3
        for first, second in zip(result.records[:3], result.records[3:]):
            assert first.key == second.key
            assert first.payload == second.payload


class TestCaching:
    def test_cache_hits_on_second_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = CampaignEngine(workers=1, cache=cache)
        cold = engine.run(_small_spec())
        assert cold.cache_hits == 0 and cold.cache_misses == 3
        warm = engine.run(_small_spec())
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert all(r.cached for r in warm.records)
        assert _comparable(cold.records) == _comparable(warm.records)

    def test_cache_distinguishes_parameters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = CampaignEngine(workers=1, cache=cache)
        engine.run(_small_spec(seed=11))
        other_seed = engine.run(_small_spec(seed=13))
        assert other_seed.cache_hits == 0 and other_seed.cache_misses == 3

    def test_cached_tables_match_fresh_tables(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fresh = CampaignEngine(workers=1).run(_small_spec())
        CampaignEngine(workers=1, cache=cache).run(_small_spec())
        cached = CampaignEngine(workers=1, cache=cache).run(_small_spec())
        assert ascii_table(*detector_rows(fresh)) == ascii_table(*detector_rows(cached))


class TestRecordStreaming:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        result = CampaignEngine(workers=1, jsonl_path=path).run(_small_spec())
        loaded = read_jsonl(path)
        assert _comparable(loaded) == _comparable(result.records)

    def test_generic_table_covers_params_and_payload(self):
        result = CampaignEngine(workers=1).run(_small_spec())
        headers, rows = result.table()
        assert "n" in headers and "satisfied" in headers
        assert len(rows) == 3


class TestCustomKinds:
    def test_register_and_execute_custom_kind(self):
        register_kind("echo-test", lambda params: {"echo": params["value"] * 2})
        try:
            spec = CampaignSpec(name="echo", kind="echo-test", axes={"value": [1, 2, 3]})
            result = CampaignEngine(workers=1).run(spec)
            assert [r.payload["echo"] for r in result.records] == [2, 4, 6]
        finally:
            from repro.campaign.runner import _KINDS

            _KINDS.pop("echo-test", None)
