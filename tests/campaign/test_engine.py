"""Tests for the campaign engine: dedup, caching, dispatch, record streaming."""

import time

import pytest

from repro.analysis.experiment import detector_campaign_spec, detector_rows
from repro.analysis.reporting import ascii_table
from repro.campaign import (
    CampaignEngine,
    CampaignSpec,
    ResultCache,
    compiled_schedules_disabled,
    read_jsonl,
    register_kind,
)
from repro.errors import ConfigurationError

HORIZON = 6_000


def _small_spec(seed: int = 11) -> CampaignSpec:
    configs = [
        {"n": 3, "t": 2, "k": 1, "bound": 3, "crashes": frozenset()},
        {"n": 3, "t": 2, "k": 2, "bound": 3, "crashes": frozenset()},
        {"n": 4, "t": 2, "k": 2, "bound": 3, "crashes": frozenset()},
    ]
    return detector_campaign_spec(configs=configs, horizon=HORIZON, seed=seed)


def _comparable(records):
    """Record fields that must be invariant across worker counts and caching."""
    return [(r.index, r.key, r.kind, r.params, r.payload) for r in records]


class TestEngineBasics:
    def test_serial_run_produces_grid_ordered_records(self):
        result = CampaignEngine(workers=1).run(_small_spec())
        assert [r.index for r in result.records] == [0, 1, 2]
        assert all(r.kind == "detector" for r in result.records)
        assert all(r.payload["satisfied"] for r in result.records)

    def test_worker_count_invariance(self):
        serial = CampaignEngine(workers=1).run(_small_spec())
        parallel = CampaignEngine(workers=3).run(_small_spec())
        assert _comparable(serial.records) == _comparable(parallel.records)
        assert ascii_table(*detector_rows(serial)) == ascii_table(*detector_rows(parallel))

    def test_chunk_size_invariance(self):
        one = CampaignEngine(workers=2, chunk_size=1).run(_small_spec())
        all_in_one = CampaignEngine(workers=2, chunk_size=3).run(_small_spec())
        assert _comparable(one.records) == _comparable(all_in_one.records)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignEngine(workers=-1)
        with pytest.raises(ConfigurationError):
            CampaignEngine(chunk_size=0)
        with pytest.raises(ConfigurationError):
            CampaignEngine().run(CampaignSpec(name="x", kind="no-such-kind"))


class TestDeduplication:
    def test_repeated_configs_execute_once(self):
        spec = _small_spec()
        doubled = CampaignSpec(
            name="doubled", kind=spec.kind, runs=list(spec.runs) + list(spec.runs)
        )
        result = CampaignEngine(workers=1).run(doubled)
        assert len(result.records) == 6
        assert result.deduplicated == 3
        for first, second in zip(result.records[:3], result.records[3:]):
            assert first.key == second.key
            assert first.payload == second.payload


class TestCaching:
    def test_cache_hits_on_second_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = CampaignEngine(workers=1, cache=cache)
        cold = engine.run(_small_spec())
        assert cold.cache_hits == 0 and cold.cache_misses == 3
        warm = engine.run(_small_spec())
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert all(r.cached for r in warm.records)
        assert _comparable(cold.records) == _comparable(warm.records)

    def test_cache_distinguishes_parameters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = CampaignEngine(workers=1, cache=cache)
        engine.run(_small_spec(seed=11))
        other_seed = engine.run(_small_spec(seed=13))
        assert other_seed.cache_hits == 0 and other_seed.cache_misses == 3

    def test_cached_tables_match_fresh_tables(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fresh = CampaignEngine(workers=1).run(_small_spec())
        CampaignEngine(workers=1, cache=cache).run(_small_spec())
        cached = CampaignEngine(workers=1, cache=cache).run(_small_spec())
        assert ascii_table(*detector_rows(fresh)) == ascii_table(*detector_rows(cached))


class TestRecordStreaming:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        result = CampaignEngine(workers=1, jsonl_path=path).run(_small_spec())
        loaded = read_jsonl(path)
        assert _comparable(loaded) == _comparable(result.records)

    def test_generic_table_covers_params_and_payload(self):
        result = CampaignEngine(workers=1).run(_small_spec())
        headers, rows = result.table()
        assert "n" in headers and "satisfied" in headers
        assert len(rows) == 3


class TestBatchedSchedules:
    def test_batched_and_streamed_paths_produce_identical_records(self):
        """Compiled-buffer replicas must be byte-identical to live streams."""
        spec = _small_spec()
        with compiled_schedules_disabled():
            streamed = CampaignEngine(workers=1).run(spec)
        batched = CampaignEngine(workers=1).run(spec)
        assert _comparable(streamed.records) == _comparable(batched.records)
        assert [r.to_json_line().rsplit(',"elapsed"', 1)[0] for r in streamed.records] == [
            r.to_json_line().rsplit(',"elapsed"', 1)[0] for r in batched.records
        ]

    def test_same_scenario_replicas_are_grouped_adjacently(self):
        # Two schedule scenarios, interleaved in grid order; grouping must
        # reorder dispatch (first-seen order) without touching record order.
        spec = CampaignSpec(
            name="interleaved",
            kind="detector",
            base={"n": 3, "t": 2, "bound": 3, "horizon": 2_000, "seed": 11,
                  "p_set": [1], "q_set": [1, 2, 3], "schedule": "set-timely"},
            runs=[{"k": 1}, {"k": 1, "seed": 13}, {"k": 2}, {"k": 2, "seed": 13}],
        )
        pending = [(run.key(), run) for run in spec.expand()]
        ordered = CampaignEngine._batched_by_schedule(pending)
        seeds = [run.param_dict()["seed"] for _, run in ordered]
        assert seeds == [11, 11, 13, 13]
        result = CampaignEngine(workers=1).run(spec)
        assert [r.params["k"] for r in result.records] == [1, 1, 2, 2]


class TestPersistentPool:
    def test_compile_toggle_reaches_forked_pool_workers(self):
        """The disabled-compilation context must govern already-forked workers."""
        from repro.campaign.runner import _KINDS, compiled_schedules_enabled

        register_kind(
            "flag-probe-test",
            lambda params: {"compiled": compiled_schedules_enabled(), "run": params["run"]},
        )
        try:
            def probe_spec(tag):
                return CampaignSpec(
                    name=f"probe-{tag}", kind="flag-probe-test",
                    base={"tag": tag}, axes={"run": [1, 2]},
                )

            with CampaignEngine(workers=2, chunk_size=1) as engine:
                warm = engine.run(probe_spec("warm"))  # forks the pool, flag on
                assert [r.payload["compiled"] for r in warm.records] == [True, True]
                with compiled_schedules_disabled():
                    cold = engine.run(probe_spec("cold"))
                assert [r.payload["compiled"] for r in cold.records] == [False, False]
                again = engine.run(probe_spec("again"))  # flag restored
                assert [r.payload["compiled"] for r in again.records] == [True, True]
        finally:
            _KINDS.pop("flag-probe-test", None)

    def test_pool_survives_across_run_invocations(self):
        with CampaignEngine(workers=2) as engine:
            first = engine.run(_small_spec())
            pool = engine._pool
            assert pool is not None
            second = engine.run(_small_spec(seed=13))
            assert engine._pool is pool
        assert engine._pool is None  # context exit closed it
        assert len(first.records) == len(second.records) == 3

    def test_close_is_idempotent_and_inline_engines_have_no_pool(self):
        engine = CampaignEngine(workers=1)
        engine.run(_small_spec())
        assert engine._pool is None
        engine.close()
        engine.close()


class TestHonestTiming:
    def test_per_run_elapsed_is_measured_worker_side(self):
        """Regression: chunk timing once included all previous chunks' wall time.

        Each run sleeps a fixed delay.  With parent-side cumulative timing the
        later chunks' per-run elapsed grew with every chunk already dispatched
        (~N×delay for the last one); worker-side timing pins each run's
        elapsed near the delay itself, independent of chunk position.
        """
        delay = 0.1

        def sleepy(params):
            time.sleep(params["delay"])
            return {"slept": params["delay"], "run": params["run"]}

        register_kind("sleep-test", sleepy)
        try:
            spec = CampaignSpec(
                name="sleepy",
                kind="sleep-test",
                base={"delay": delay},
                axes={"run": [1, 2, 3, 4, 5, 6]},
            )
            with CampaignEngine(workers=2, chunk_size=1) as engine:
                result = engine.run(spec)
            elapsed = [record.elapsed for record in result.records]
            assert all(e >= delay * 0.9 for e in elapsed), elapsed
            # The old cumulative bug put the last chunks at ~3x the delay
            # (six chunks over two workers); worker-side timing stays tight.
            assert max(elapsed) < delay * 2, elapsed
        finally:
            from repro.campaign.runner import _KINDS

            _KINDS.pop("sleep-test", None)

    def test_inline_elapsed_is_per_run(self):
        delay = 0.05

        def sleepy(params):
            time.sleep(delay)
            return {"ok": True, "run": params["run"]}

        register_kind("sleep-inline-test", sleepy)
        try:
            spec = CampaignSpec(
                name="sleepy-inline", kind="sleep-inline-test", axes={"run": [1, 2, 3]}
            )
            result = CampaignEngine(workers=1).run(spec)
            for record in result.records:
                assert delay * 0.9 <= record.elapsed < delay * 2
        finally:
            from repro.campaign.runner import _KINDS

            _KINDS.pop("sleep-inline-test", None)


class TestCustomKinds:
    def test_register_and_execute_custom_kind(self):
        register_kind("echo-test", lambda params: {"echo": params["value"] * 2})
        try:
            spec = CampaignSpec(name="echo", kind="echo-test", axes={"value": [1, 2, 3]})
            result = CampaignEngine(workers=1).run(spec)
            assert [r.payload["echo"] for r in result.records] == [2, 4, 6]
        finally:
            from repro.campaign.runner import _KINDS

            _KINDS.pop("echo-test", None)
