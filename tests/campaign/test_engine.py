"""Tests for the campaign engine: dedup, caching, dispatch, record streaming."""

import time

import pytest

from repro.analysis.experiment import detector_campaign_spec, detector_rows
from repro.analysis.reporting import ascii_table
from repro.campaign import (
    CampaignEngine,
    CampaignSpec,
    ResultCache,
    compiled_schedules_disabled,
    read_jsonl,
    register_kind,
)
from repro.errors import CampaignError, ConfigurationError

HORIZON = 6_000


def _small_spec(seed: int = 11) -> CampaignSpec:
    configs = [
        {"n": 3, "t": 2, "k": 1, "bound": 3, "crashes": frozenset()},
        {"n": 3, "t": 2, "k": 2, "bound": 3, "crashes": frozenset()},
        {"n": 4, "t": 2, "k": 2, "bound": 3, "crashes": frozenset()},
    ]
    return detector_campaign_spec(configs=configs, horizon=HORIZON, seed=seed)


def _comparable(records):
    """Record fields that must be invariant across worker counts and caching."""
    return [(r.index, r.key, r.kind, r.params, r.payload) for r in records]


class TestEngineBasics:
    def test_serial_run_produces_grid_ordered_records(self):
        result = CampaignEngine(workers=1).run(_small_spec())
        assert [r.index for r in result.records] == [0, 1, 2]
        assert all(r.kind == "detector" for r in result.records)
        assert all(r.payload["satisfied"] for r in result.records)

    def test_worker_count_invariance(self):
        serial = CampaignEngine(workers=1).run(_small_spec())
        parallel = CampaignEngine(workers=3).run(_small_spec())
        assert _comparable(serial.records) == _comparable(parallel.records)
        assert ascii_table(*detector_rows(serial)) == ascii_table(*detector_rows(parallel))

    def test_chunk_size_invariance(self):
        one = CampaignEngine(workers=2, chunk_size=1).run(_small_spec())
        all_in_one = CampaignEngine(workers=2, chunk_size=3).run(_small_spec())
        assert _comparable(one.records) == _comparable(all_in_one.records)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignEngine(workers=-1)
        with pytest.raises(ConfigurationError):
            CampaignEngine(chunk_size=0)
        with pytest.raises(ConfigurationError):
            CampaignEngine().run(CampaignSpec(name="x", kind="no-such-kind"))


class TestDeduplication:
    def test_repeated_configs_execute_once(self):
        spec = _small_spec()
        doubled = CampaignSpec(
            name="doubled", kind=spec.kind, runs=list(spec.runs) + list(spec.runs)
        )
        result = CampaignEngine(workers=1).run(doubled)
        assert len(result.records) == 6
        assert result.deduplicated == 3
        for first, second in zip(result.records[:3], result.records[3:]):
            assert first.key == second.key
            assert first.payload == second.payload


class TestCaching:
    def test_cache_hits_on_second_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = CampaignEngine(workers=1, cache=cache)
        cold = engine.run(_small_spec())
        assert cold.cache_hits == 0 and cold.cache_misses == 3
        warm = engine.run(_small_spec())
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert all(r.cached for r in warm.records)
        assert _comparable(cold.records) == _comparable(warm.records)

    def test_cache_distinguishes_parameters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = CampaignEngine(workers=1, cache=cache)
        engine.run(_small_spec(seed=11))
        other_seed = engine.run(_small_spec(seed=13))
        assert other_seed.cache_hits == 0 and other_seed.cache_misses == 3

    def test_cached_tables_match_fresh_tables(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fresh = CampaignEngine(workers=1).run(_small_spec())
        CampaignEngine(workers=1, cache=cache).run(_small_spec())
        cached = CampaignEngine(workers=1, cache=cache).run(_small_spec())
        assert ascii_table(*detector_rows(fresh)) == ascii_table(*detector_rows(cached))


class TestRecordStreaming:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        result = CampaignEngine(workers=1, jsonl_path=path).run(_small_spec())
        loaded = read_jsonl(path)
        assert _comparable(loaded) == _comparable(result.records)

    def test_generic_table_covers_params_and_payload(self):
        result = CampaignEngine(workers=1).run(_small_spec())
        headers, rows = result.table()
        assert "n" in headers and "satisfied" in headers
        assert len(rows) == 3

    def test_write_jsonl_is_atomic(self, tmp_path):
        from repro.campaign.records import write_jsonl

        path = tmp_path / "runs.jsonl"
        result = CampaignEngine(workers=1).run(_small_spec())
        write_jsonl(result.records, path)
        # The temp file was renamed over the target, never left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["runs.jsonl"]
        # Overwriting goes through the same rename, replacing the content.
        write_jsonl(result.records[:1], path)
        assert len(read_jsonl(path)) == 1
        assert [p.name for p in tmp_path.iterdir()] == ["runs.jsonl"]

    def test_canonical_jsonl_normalizes_volatile_fields(self, tmp_path):
        from repro.campaign.records import write_jsonl

        cache = ResultCache(tmp_path / "cache")
        first = CampaignEngine(workers=1, cache=cache).run(_small_spec())
        second = CampaignEngine(workers=1, cache=cache).run(_small_spec())
        assert any(r.cached for r in second.records)  # volatile field differs
        fresh_path, cached_path = tmp_path / "fresh.jsonl", tmp_path / "cached.jsonl"
        write_jsonl(first.records, fresh_path, canonical=True)
        write_jsonl(second.records, cached_path, canonical=True)
        assert fresh_path.read_bytes() == cached_path.read_bytes()
        assert all(not r.cached and r.elapsed == 0.0 for r in read_jsonl(fresh_path))


class TestBatchedSchedules:
    def test_batched_and_streamed_paths_produce_identical_records(self):
        """Compiled-buffer replicas must be byte-identical to live streams."""
        spec = _small_spec()
        with compiled_schedules_disabled():
            streamed = CampaignEngine(workers=1).run(spec)
        batched = CampaignEngine(workers=1).run(spec)
        assert _comparable(streamed.records) == _comparable(batched.records)
        assert [r.to_json_line().rsplit(',"elapsed"', 1)[0] for r in streamed.records] == [
            r.to_json_line().rsplit(',"elapsed"', 1)[0] for r in batched.records
        ]

    def test_same_scenario_replicas_are_grouped_adjacently(self):
        # Two schedule scenarios, interleaved in grid order; grouping must
        # reorder dispatch (first-seen order) without touching record order.
        spec = CampaignSpec(
            name="interleaved",
            kind="detector",
            base={"n": 3, "t": 2, "bound": 3, "horizon": 2_000, "seed": 11,
                  "p_set": [1], "q_set": [1, 2, 3], "schedule": "set-timely"},
            runs=[{"k": 1}, {"k": 1, "seed": 13}, {"k": 2}, {"k": 2, "seed": 13}],
        )
        pending = [(run.key(), run) for run in spec.expand()]
        ordered = CampaignEngine._batched_by_schedule(pending)
        seeds = [run.param_dict()["seed"] for _, run in ordered]
        assert seeds == [11, 11, 13, 13]
        result = CampaignEngine(workers=1).run(spec)
        assert [r.params["k"] for r in result.records] == [1, 1, 2, 2]


class TestPersistentPool:
    def test_compile_toggle_reaches_forked_pool_workers(self):
        """The disabled-compilation context must govern already-forked workers."""
        from repro.campaign.runner import _KINDS, compiled_schedules_enabled

        register_kind(
            "flag-probe-test",
            lambda params: {"compiled": compiled_schedules_enabled(), "run": params["run"]},
        )
        try:
            def probe_spec(tag):
                return CampaignSpec(
                    name=f"probe-{tag}", kind="flag-probe-test",
                    base={"tag": tag}, axes={"run": [1, 2]},
                )

            with CampaignEngine(workers=2, chunk_size=1) as engine:
                warm = engine.run(probe_spec("warm"))  # forks the pool, flag on
                assert [r.payload["compiled"] for r in warm.records] == [True, True]
                with compiled_schedules_disabled():
                    cold = engine.run(probe_spec("cold"))
                assert [r.payload["compiled"] for r in cold.records] == [False, False]
                again = engine.run(probe_spec("again"))  # flag restored
                assert [r.payload["compiled"] for r in again.records] == [True, True]
        finally:
            _KINDS.pop("flag-probe-test", None)

    def test_pool_survives_across_run_invocations(self):
        with CampaignEngine(workers=2) as engine:
            first = engine.run(_small_spec())
            pool = engine._pool
            assert pool is not None
            second = engine.run(_small_spec(seed=13))
            assert engine._pool is pool
        assert engine._pool is None  # context exit closed it
        assert len(first.records) == len(second.records) == 3

    def test_close_is_idempotent_and_inline_engines_have_no_pool(self):
        engine = CampaignEngine(workers=1)
        engine.run(_small_spec())
        assert engine._pool is None
        engine.close()
        engine.close()


class TestHonestTiming:
    def test_per_run_elapsed_is_measured_worker_side(self):
        """Regression: chunk timing once included all previous chunks' wall time.

        Each run sleeps a fixed delay.  With parent-side cumulative timing the
        later chunks' per-run elapsed grew with every chunk already dispatched
        (~N×delay for the last one); worker-side timing pins each run's
        elapsed near the delay itself, independent of chunk position.
        """
        delay = 0.1

        def sleepy(params):
            time.sleep(params["delay"])
            return {"slept": params["delay"], "run": params["run"]}

        register_kind("sleep-test", sleepy)
        try:
            spec = CampaignSpec(
                name="sleepy",
                kind="sleep-test",
                base={"delay": delay},
                axes={"run": [1, 2, 3, 4, 5, 6]},
            )
            with CampaignEngine(workers=2, chunk_size=1) as engine:
                result = engine.run(spec)
            elapsed = [record.elapsed for record in result.records]
            assert all(e >= delay * 0.9 for e in elapsed), elapsed
            # The old cumulative bug put the last chunks at ~3x the delay
            # (six chunks over two workers); worker-side timing stays tight.
            assert max(elapsed) < delay * 2, elapsed
        finally:
            from repro.campaign.runner import _KINDS

            _KINDS.pop("sleep-test", None)

    def test_inline_elapsed_is_per_run(self):
        delay = 0.05

        def sleepy(params):
            time.sleep(delay)
            return {"ok": True, "run": params["run"]}

        register_kind("sleep-inline-test", sleepy)
        try:
            spec = CampaignSpec(
                name="sleepy-inline", kind="sleep-inline-test", axes={"run": [1, 2, 3]}
            )
            result = CampaignEngine(workers=1).run(spec)
            for record in result.records:
                assert delay * 0.9 <= record.elapsed < delay * 2
        finally:
            from repro.campaign.runner import _KINDS

            _KINDS.pop("sleep-inline-test", None)


class TestCustomKinds:
    def test_register_and_execute_custom_kind(self):
        register_kind("echo-test", lambda params: {"echo": params["value"] * 2})
        try:
            spec = CampaignSpec(name="echo", kind="echo-test", axes={"value": [1, 2, 3]})
            result = CampaignEngine(workers=1).run(spec)
            assert [r.payload["echo"] for r in result.records] == [2, 4, 6]
        finally:
            from repro.campaign.runner import _KINDS

            _KINDS.pop("echo-test", None)


def _suicide_once(params):
    """SIGKILL the executing pool worker the first time, succeed afterwards.

    Only ever registered for pool runs (``workers >= 2``): executed inline it
    would kill the test process itself.
    """
    import os
    import signal
    import time as time_module
    from pathlib import Path

    # Determinism helper: only die after the named runs have finished, so
    # which chunks were harvested before the crash is not a race.
    deadline = time_module.time() + 30.0
    for done_marker in params.get("await_markers", ()):
        while not Path(done_marker).exists() and time_module.time() < deadline:
            time_module.sleep(0.005)
    if params.get("always_lethal"):
        os.kill(os.getpid(), signal.SIGKILL)
    if params.get("lethal"):
        marker = Path(params["marker"])
        if not marker.exists():
            marker.write_text("dead", encoding="utf-8")
            os.kill(os.getpid(), signal.SIGKILL)
    if params.get("done_marker"):
        Path(params["done_marker"]).write_text("done", encoding="utf-8")
    return {"x": params["x"] * 10}


@pytest.fixture
def suicide_kind():
    register_kind("suicide-once", _suicide_once)
    yield
    from repro.campaign.runner import _KINDS

    _KINDS.pop("suicide-once", None)


class TestPoolSalvage:
    """A dead pool worker loses only its in-flight chunk, nothing harvested."""

    def _spec(self, tmp_path, lethal_index=2):
        runs = [
            {
                "x": index,
                "lethal": index == lethal_index,
                "marker": str(tmp_path / "marker"),
            }
            for index in range(4)
        ]
        return CampaignSpec(name="salvage", kind="suicide-once", runs=runs)

    def test_sigkilled_worker_chunk_is_redispatched(self, suicide_kind, tmp_path):
        engine = CampaignEngine(workers=2, chunk_size=1)
        try:
            result = engine.run(self._spec(tmp_path))
        finally:
            engine.close()
        assert (tmp_path / "marker").exists(), "the kill fired"
        assert [r.payload["x"] for r in result.records] == [0, 10, 20, 30]

    def test_salvaged_records_match_inline_run(self, suicide_kind, tmp_path):
        pool_engine = CampaignEngine(workers=2, chunk_size=1)
        try:
            salvaged = pool_engine.run(self._spec(tmp_path))
        finally:
            pool_engine.close()
        # Inline reference: the marker now exists, so nothing dies.
        inline = CampaignEngine().run(self._spec(tmp_path))
        assert [r.canonical() for r in salvaged.records] == [
            r.canonical() for r in inline.records
        ]

    def test_completed_chunks_are_persisted_before_the_crash(
        self, suicide_kind, tmp_path
    ):
        # Runs 0 and 1 complete first (the killer waits for their done
        # markers), so their payloads must reach the cache even though run 2
        # then kills its worker and the zero re-dispatch budget aborts the
        # campaign.
        cache = ResultCache(tmp_path / "cache")
        engine = CampaignEngine(
            workers=2, chunk_size=1, cache=cache, dispatch_retries=0
        )
        done = [str(tmp_path / f"done-{index}") for index in range(2)]
        spec = CampaignSpec(
            name="salvage",
            kind="suicide-once",
            runs=[
                {"x": 0, "done_marker": done[0]},
                {"x": 1, "done_marker": done[1]},
                {
                    "x": 2,
                    "lethal": True,
                    "marker": str(tmp_path / "marker"),
                    "await_markers": done,
                },
                {"x": 3},
            ],
        )
        expanded = spec.expand()
        with pytest.raises(CampaignError):
            engine.run(spec)
        assert cache.contains(expanded[0].key())
        assert cache.contains(expanded[1].key())
        # The engine closed its broken pool and stays reusable: the marker
        # exists now, so the same spec completes, reusing salvaged payloads.
        retry = engine.run(spec)
        assert retry.cache_hits >= 2
        assert [r.payload["x"] for r in retry.records] == [0, 10, 20, 30]
        engine.close()
        engine.close()  # idempotent

    def test_engine_reusable_after_exhausted_redispatch_budget(
        self, suicide_kind, tmp_path
    ):
        engine = CampaignEngine(workers=2, chunk_size=1, dispatch_retries=0)
        # Lethal on every attempt: no marker, the re-dispatch dies too.
        spec = CampaignSpec(
            name="doomed", kind="suicide-once", runs=[{"x": 0, "always_lethal": True}]
        )
        with pytest.raises(CampaignError, match="re-dispatch"):
            engine.run(spec)
        # A fresh pool is built transparently for the next run.
        good = CampaignSpec(
            name="fine", kind="suicide-once", runs=[{"x": 7, "lethal": False}]
        )
        result = engine.run(good)
        assert result.records[0].payload["x"] == 70
        engine.close()
