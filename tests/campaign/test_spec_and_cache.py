"""Tests for campaign specs (grid expansion) and the content-addressed cache."""

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec, RunSpec, canonical_json, content_key
from repro.errors import ConfigurationError


class TestCanonicalJson:
    def test_sets_and_tuples_normalize(self):
        assert canonical_json(frozenset({3, 1, 2})) == "[1,2,3]"
        assert canonical_json((1, 2)) == "[1,2]"
        assert canonical_json({"b": 1, "a": frozenset({2})}) == '{"a":[2],"b":1}'

    def test_identical_configs_share_a_key(self):
        a = content_key("detector", {"n": 4, "crashes": frozenset({2, 1})})
        b = content_key("detector", {"crashes": [1, 2], "n": 4})
        assert a == b

    def test_different_configs_differ(self):
        a = content_key("detector", {"n": 4})
        b = content_key("detector", {"n": 5})
        c = content_key("agreement", {"n": 4})
        assert len({a, b, c}) == 3

    def test_non_serializable_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"fn": canonical_json})


class TestGridExpansion:
    def test_explicit_runs_in_order(self):
        spec = CampaignSpec(name="x", kind="k", runs=[{"a": 1}, {"a": 2}])
        params = [s.param_dict() for s in spec.expand()]
        assert params == [{"a": 1}, {"a": 2}]

    def test_axes_cross_product_is_deterministic(self):
        spec = CampaignSpec(
            name="x",
            kind="k",
            base={"c": 0},
            runs=[{"a": 1}, {"a": 2}],
            axes={"s": [10, 20], "p": ["u", "v"]},
        )
        first = [s.param_dict() for s in spec.expand()]
        second = [s.param_dict() for s in spec.expand()]
        assert first == second
        # run-major, then axes in declaration order, values in given order
        assert first[0] == {"c": 0, "a": 1, "s": 10, "p": "u"}
        assert first[1] == {"c": 0, "a": 1, "s": 10, "p": "v"}
        assert first[2] == {"c": 0, "a": 1, "s": 20, "p": "u"}
        assert first[4] == {"c": 0, "a": 2, "s": 10, "p": "u"}
        assert len(first) == 2 * 2 * 2

    def test_axis_overrides_run_overrides_base(self):
        spec = CampaignSpec(
            name="x", kind="k", base={"a": 0, "b": 0}, runs=[{"a": 1}], axes={"b": [7]}
        )
        assert spec.expand()[0].param_dict() == {"a": 1, "b": 7}

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="x", kind="k", axes={"s": []}).expand()

    def test_empty_run_list_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="x", kind="k", runs=[]).expand()

    def test_runspec_key_stable(self):
        spec = RunSpec.create("k", {"n": 3, "xs": (2, 1)})
        assert spec.key() == RunSpec.create("k", {"xs": [2, 1], "n": 3}).key()


class TestResultCache:
    def test_memory_roundtrip(self):
        cache = ResultCache()
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"x": 1})
        assert cache.get("deadbeef") == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1

    def test_directory_roundtrip_survives_new_instance(self, tmp_path):
        first = ResultCache(tmp_path / "cache")
        key = content_key("k", {"n": 1})
        first.put(key, {"result": [1, 2]})
        second = ResultCache(tmp_path / "cache")
        assert second.get(key) == {"result": [1, 2]}
        assert second.hits == 1

    def test_contains_and_len(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = content_key("k", {"n": 2})
        assert not cache.contains(key)
        cache.put(key, {})
        assert cache.contains(key)
        assert len(cache) == 1

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = content_key("k", {"n": 3})
        cache.put(key, {"x": 1})
        path = cache._path_for(key)
        path.write_text("{not json", encoding="utf-8")
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.get(key) is None
        assert fresh.misses == 1

    def test_get_quarantines_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = content_key("k", {"n": 5})
        cache.put(key, {"x": 1})
        path = cache._path_for(key)
        path.write_text('{"truncated": tru', encoding="utf-8")
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.get(key) is None
        assert fresh.quarantined == 1
        assert not path.exists(), "corrupt entry must be deleted, not retried"

    def test_contains_validates_exactly_like_get(self, tmp_path):
        # The satellite alignment: contains() must never promise a payload
        # that get() would quarantine.
        cache = ResultCache(tmp_path / "cache")
        key = content_key("k", {"n": 6})
        cache.put(key, {"x": 1})
        cache._path_for(key).write_text("[1, 2, 3]", encoding="utf-8")  # non-dict
        fresh = ResultCache(tmp_path / "cache")
        assert not fresh.contains(key)
        assert fresh.quarantined == 1
        assert not cache._path_for(key).exists()
        assert fresh.get(key) is None

    def test_contains_loads_valid_disk_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = content_key("k", {"n": 7})
        cache.put(key, {"x": 1})
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.contains(key)
        assert fresh.quarantined == 0
        assert fresh.get(key) == {"x": 1}
