"""Tests for the durable job queue: leasing, backoff, poison, drain, resume."""

import json
import os
import signal

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignSpec,
    DurableCampaignEngine,
    JobQueue,
    QueueWorker,
    ResultCache,
    content_key,
    drain_queue,
    read_jsonl,
    register_kind,
)
from repro.campaign.queue import WorkerReport
from repro.campaign.records import write_jsonl
from repro.errors import CampaignError, ConfigurationError, PoisonedRunsError

HORIZON = 3_000


def _spec(name: str = "queued", seeds=(11, 13)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="detector",
        base={
            "schedule": "set-timely",
            "n": 3,
            "t": 2,
            "bound": 3,
            "crashes": frozenset(),
            "p_set": frozenset({1}),
            "q_set": frozenset({1, 2, 3}),
            "horizon": HORIZON,
        },
        runs=[{"k": 1}, {"k": 2}],
        axes={"seed": list(seeds)},
    )


def _solo_spec() -> CampaignSpec:
    base = dict(_spec().base, seed=11)
    return CampaignSpec(name="solo", kind="detector", base=base, runs=[{"k": 1}])


class FakeClock:
    """A manually advanced time source for deterministic lease/backoff tests."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestEnqueue:
    def test_enqueue_is_idempotent(self, tmp_path):
        with JobQueue(tmp_path / "q.db") as queue:
            first = queue.enqueue(_spec())
            again = queue.enqueue(_spec())
        assert first.positions == 4 and first.new_jobs == 4
        assert again.new_jobs == 0 and again.existing_jobs == 4

    def test_campaigns_sharing_configs_share_jobs(self, tmp_path):
        with JobQueue(tmp_path / "q.db") as queue:
            queue.enqueue(_spec(name="one"))
            report = queue.enqueue(_spec(name="two"))
            assert report.new_jobs == 0 and report.existing_jobs == 4
            assert queue.status().counts.get("pending") == 4
            assert queue.campaigns() == ["one", "two"]

    def test_within_campaign_duplicates_collapse(self, tmp_path):
        spec = _spec(seeds=(11, 11))  # two positions, one distinct configuration each k
        with JobQueue(tmp_path / "q.db") as queue:
            report = queue.enqueue(spec)
        assert report.positions == 4
        assert report.new_jobs == 2

    def test_policy_persists_in_meta(self, tmp_path):
        path = tmp_path / "q.db"
        with JobQueue(path, lease_seconds=1.5, max_attempts=5):
            pass
        with JobQueue(path) as reopened:
            assert reopened.lease_seconds == 1.5
            assert reopened.max_attempts == 5

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JobQueue(tmp_path / "a.db", lease_seconds=0)
        with pytest.raises(ConfigurationError):
            JobQueue(tmp_path / "b.db", max_attempts=0)


class TestLeaseCycle:
    def _queue(self, tmp_path, clock, **policy) -> JobQueue:
        queue = JobQueue(tmp_path / "q.db", clock=clock, **policy)
        queue.enqueue(_spec())
        return queue

    def test_lease_charges_attempt_and_is_exclusive(self, tmp_path):
        clock = FakeClock()
        with self._queue(tmp_path, clock) as queue:
            jobs = queue.lease("w1", limit=4)
            assert len(jobs) == 4
            assert all(job.attempt == 1 for job in jobs)
            assert queue.lease("w2", limit=4) == []

    def test_complete_is_lease_checked(self, tmp_path):
        clock = FakeClock()
        with self._queue(tmp_path, clock) as queue:
            (job,) = queue.lease("w1")
            assert not queue.complete(job.key, {"x": 1}, 0.1, "impostor")
            assert queue.complete(job.key, {"x": 1}, 0.1, "w1")
            assert job.key in queue.done_keys()

    def test_expired_lease_is_reclaimed_with_fresh_attempt(self, tmp_path):
        clock = FakeClock()
        with self._queue(tmp_path, clock, lease_seconds=10.0) as queue:
            jobs = queue.lease("dead", limit=4)
            assert queue.lease("other", limit=4) == []  # leases still held
            clock.advance(11.0)
            reclaimed = queue.lease("alive", limit=4)
            assert {job.key for job in reclaimed} == {job.key for job in jobs}
            assert all(job.attempt == 2 for job in reclaimed)
            # The dead worker's late completion is stale and discarded.
            assert not queue.complete(jobs[0].key, {"x": 1}, 0.1, "dead")

    def test_heartbeat_extends_leases(self, tmp_path):
        clock = FakeClock()
        with self._queue(tmp_path, clock, lease_seconds=10.0) as queue:
            queue.lease("w1", limit=4)
            clock.advance(8.0)
            assert queue.heartbeat("w1") == 4
            clock.advance(8.0)  # past the original expiry, within the renewed one
            assert queue.lease("w2", limit=4) == []

    def test_fail_backs_off_exponentially_with_cap(self, tmp_path):
        clock = FakeClock()
        with JobQueue(
            tmp_path / "q.db",
            clock=clock,
            backoff_base=1.0,
            backoff_cap=3.0,
            max_attempts=5,
        ) as queue:
            queue.enqueue(_solo_spec())
            (job,) = queue.lease("w1")
            assert queue.fail(job.key, "boom", "w1") == "pending"
            assert queue.lease("w1") == []  # gated by not_before
            clock.advance(1.0)  # base * 2^0
            (job,) = queue.lease("w1")
            assert job.attempt == 2
            queue.fail(job.key, "boom", "w1")
            clock.advance(1.0)
            assert queue.lease("w1") == []  # second backoff is 2s now
            clock.advance(1.0)
            (job,) = queue.lease("w1")
            assert job.attempt == 3
            queue.fail(job.key, "boom", "w1")
            clock.advance(3.0)  # capped at 3.0, not 4.0
            (job,) = queue.lease("w1")
            assert job.attempt == 4

    def test_exhausted_attempts_poison_instead_of_lease(self, tmp_path):
        clock = FakeClock()
        with self._queue(
            tmp_path, clock, max_attempts=2, backoff_base=0.5, backoff_cap=0.5
        ) as queue:
            key = None
            for _ in range(2):
                (job,) = queue.lease("w1", limit=1)
                key = job.key
                queue.fail(job.key, "boom", "w1")
                clock.advance(1.0)
            # Third lease must quarantine, not execute.
            remaining = queue.lease("w1", limit=4)
            assert all(job.key != key for job in remaining)
            status = queue.status()
            assert status.counts.get("poisoned") == 1
            assert status.poison[0][0] == key
            assert "boom" in status.poison[0][3]
            assert max(queue.attempts_by_key().values()) <= 2

    def test_dead_worker_at_max_attempts_poisons_on_reclaim(self, tmp_path):
        clock = FakeClock()
        with self._queue(tmp_path, clock, max_attempts=1, lease_seconds=5.0) as queue:
            (job,) = queue.lease("dead")
            clock.advance(6.0)
            queue.lease("alive", limit=4)
            status = queue.status()
            assert status.counts.get("poisoned") == 1
            assert "worker died" in status.poison[0][3]

    def test_record_done_preresolves_pending_only(self, tmp_path):
        clock = FakeClock()
        with self._queue(tmp_path, clock) as queue:
            (job,) = queue.lease("w1")
            assert not queue.record_done(job.key, {"x": 1})  # leased, not pending
            pending = [k for k in queue.attempts_by_key() if k != job.key]
            assert queue.record_done(pending[0], {"x": 1})


class TestRecordsFor:
    def test_grid_order_and_cached_marking(self, tmp_path):
        spec = _spec()
        with JobQueue(tmp_path / "q.db") as queue:
            queue.enqueue(spec)
            expanded = spec.expand()
            cached_key = expanded[0].key()
            queue.record_done(cached_key, {"x": 0})
            for run in expanded[1:]:
                if queue.record_done(run.key(), {"x": 1}):
                    pass
            records = queue.records_for(spec.name, cached_keys=frozenset({cached_key}))
        assert [record.index for record in records] == [0, 1, 2, 3]
        assert records[0].cached and not records[1].cached
        assert [record.key for record in records] == [run.key() for run in expanded]

    def test_unfinished_positions_are_an_error(self, tmp_path):
        with JobQueue(tmp_path / "q.db") as queue:
            queue.enqueue(_spec())
            with pytest.raises(CampaignError, match="unfinished"):
                queue.records_for("queued")

    def test_unknown_campaign_is_an_error(self, tmp_path):
        with JobQueue(tmp_path / "q.db") as queue:
            with pytest.raises(CampaignError, match="no positions"):
                queue.records_for("nope")

    def test_poisoned_runs_are_reported_not_dropped(self, tmp_path):
        clock = FakeClock()
        with JobQueue(tmp_path / "q.db", clock=clock, max_attempts=1) as queue:
            queue.enqueue(_spec())
            (job,) = queue.lease("w1")
            queue.fail(job.key, "kaboom", "w1")
            for other in queue.lease("w1", limit=4):
                queue.complete(other.key, {"x": 1}, 0.1, "w1")
            with pytest.raises(PoisonedRunsError, match="kaboom"):
                queue.records_for("queued")


class TestQueueWorker:
    def test_worker_drains_and_persists_to_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with JobQueue(tmp_path / "q.db") as queue:
            queue.enqueue(_spec())
            report = QueueWorker(queue, "w1", cache=cache, batch=2).run()
            assert report.completed == 4 and report.failed == 0
            assert queue.unfinished() == 0
            for key in queue.done_keys():
                assert cache.contains(key)

    def test_max_runs_retires_worker_early(self, tmp_path):
        with JobQueue(tmp_path / "q.db") as queue:
            queue.enqueue(_spec())
            report = QueueWorker(queue, "w1", max_runs=2).run()
            assert report.leased == 2
            assert queue.unfinished() == 2

    def test_worker_failures_travel_the_backoff_path(self, tmp_path):
        # A kind that always raises exercises fail -> backoff -> poison
        # without any fault injector.
        register_kind("always-raises", _always_raises)
        spec = CampaignSpec(
            name="doomed", kind="always-raises", runs=[{"x": 1}]
        )
        with JobQueue(
            tmp_path / "q.db", max_attempts=2, backoff_base=0.01, backoff_cap=0.01
        ) as queue:
            queue.enqueue(spec)
            report = QueueWorker(queue, "w1", poll_interval=0.01).run()
            assert report.failed == 2
            status = queue.status()
            assert status.counts.get("poisoned") == 1
            assert "ValueError" in status.poison[0][3]
            assert max(queue.attempts_by_key().values()) == 2


def _always_raises(params):
    raise ValueError("this kind always fails")


class TestDrain:
    def test_multiprocess_drain_completes_queue(self, tmp_path):
        path = tmp_path / "q.db"
        with JobQueue(path) as queue:
            queue.enqueue(_spec())
        report = drain_queue(path, workers=2, cache_dir=tmp_path / "cache")
        assert report.deaths == 0 and report.respawns == 0
        with JobQueue(path) as queue:
            assert queue.unfinished() == 0

    def test_interrupted_drain_is_resumable(self, tmp_path):
        path = tmp_path / "q.db"
        with JobQueue(path) as queue:
            queue.enqueue(_spec())
        drain_queue(path, workers=1, max_runs_per_worker=2)
        with JobQueue(path) as queue:
            assert queue.unfinished() == 2
        drain_queue(path, workers=1)
        with JobQueue(path) as queue:
            assert queue.unfinished() == 0


class TestDurableEngine:
    def test_records_match_plain_engine_canonically(self, tmp_path):
        spec = _spec()
        plain = CampaignEngine().run(spec)
        engine = DurableCampaignEngine(tmp_path / "q.db", workers=2)
        durable = engine.run(spec)
        assert [r.canonical() for r in durable.records] == [
            r.canonical() for r in plain.records
        ]

    def test_second_run_resumes_without_reexecuting(self, tmp_path):
        spec = _spec()
        engine = DurableCampaignEngine(tmp_path / "q.db")
        engine.run(spec)
        attempts_before = None
        with engine.open_queue() as queue:
            attempts_before = queue.attempts_by_key()
        resumed = DurableCampaignEngine(tmp_path / "q.db")
        result = resumed.run(spec)
        assert len(result.records) == 4
        assert resumed.enqueue_report.already_done == 4
        with resumed.open_queue() as queue:
            assert queue.attempts_by_key() == attempts_before

    def test_jsonl_is_canonical_and_stable_across_resume(self, tmp_path):
        spec = _spec()
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        DurableCampaignEngine(tmp_path / "q.db", workers=2, jsonl_path=first).run(spec)
        DurableCampaignEngine(tmp_path / "q.db", workers=2, jsonl_path=second).run(spec)
        assert first.read_bytes() == second.read_bytes()

    def test_cache_preresolution_skips_workers(self, tmp_path):
        spec = _spec()
        cache = ResultCache(tmp_path / "cache")
        CampaignEngine(cache=cache).run(spec)
        engine = DurableCampaignEngine(
            tmp_path / "q.db", cache=ResultCache(tmp_path / "cache")
        )
        result = engine.run(spec)
        assert result.cache_hits == 4 and result.cache_misses == 0
        assert all(record.cached for record in result.records)
