"""The chaos harness and its differential acceptance test.

The headline guarantee of the durable campaign service: a chaos-ridden drain
— workers SIGKILLed mid-run, injected exceptions, stalls, a truncated cache
entry — interrupted and resumed through ``repro campaign --resume`` produces
records byte-identical to an unfaulted single-shot run, with no run ever
executing more than ``max_attempts`` times.
"""

import pytest

from repro.campaign import (
    CampaignSpec,
    DurableCampaignEngine,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    JobQueue,
    QueueWorker,
    ResultCache,
)
from repro.campaign.faults import TRUNCATED_PREFIX
from repro.cli import run
from repro.errors import CampaignError, ConfigurationError, PoisonedRunsError

KEYS = [f"key-{index:02d}" for index in range(12)]

_BASE = {
    "schedule": "set-timely",
    "n": 3,
    "t": 2,
    "bound": 3,
    "crashes": frozenset(),
    "p_set": frozenset({1}),
    "q_set": frozenset({1, 2, 3}),
    "horizon": 3_000,
}


def _grid_spec() -> CampaignSpec:
    return CampaignSpec(
        name="chaos-grid",
        kind="detector",
        base=_BASE,
        runs=[{"k": 1}, {"k": 2}],
        axes={"seed": [11, 13]},
    )


def _solo_spec() -> CampaignSpec:
    return CampaignSpec(
        name="chaos-solo", kind="detector", base=dict(_BASE, seed=11), runs=[{"k": 1}]
    )


class TestFaultPlan:
    def test_sampling_is_deterministic(self):
        first = FaultPlan.sample(KEYS, seed=7, kills=3, errors=2, stalls=1, corrupts=1)
        second = FaultPlan.sample(
            list(reversed(KEYS)), seed=7, kills=3, errors=2, stalls=1, corrupts=1
        )
        assert first == second  # order of the key pool must not matter

    def test_fault_sets_are_disjoint(self):
        plan = FaultPlan.sample(KEYS, seed=3, kills=4, errors=3, stalls=2, corrupts=2)
        drawn = (
            set(plan.kill_keys)
            | set(plan.error_keys)
            | set(plan.stall_keys)
            | set(plan.corrupt_keys)
        )
        assert len(drawn) == plan.total_faults() == 11

    def test_overdrawn_plan_rejected(self):
        with pytest.raises(ConfigurationError, match="13"):
            FaultPlan.sample(KEYS, seed=1, kills=13)

    def test_describe_names_every_fault_class(self):
        plan = FaultPlan.sample(KEYS, seed=1, kills=1, errors=1, stalls=1, corrupts=1)
        text = plan.describe()
        for word in ("kill", "error", "stall", "truncation"):
            assert word in text


class TestFaultInjector:
    def test_faults_fire_only_on_the_configured_attempt(self):
        plan = FaultPlan(error_keys=("k",), fire_on_attempt=1)
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            injector.before_run("k", 1)
        injector.before_run("k", 2)  # retry proceeds cleanly
        injector.before_run("other", 1)

    def test_injected_error_travels_the_retry_path(self, tmp_path):
        spec = _solo_spec()
        key = spec.expand()[0].key()
        with JobQueue(tmp_path / "q.db", backoff_base=0.01, backoff_cap=0.01) as queue:
            queue.enqueue(spec)
            injector = FaultInjector(FaultPlan(error_keys=(key,)))
            report = QueueWorker(
                queue, "w1", injector=injector, poll_interval=0.01
            ).run()
            assert report.failed == 1  # the injected first attempt
            assert report.completed == 1  # the clean retry
            assert queue.attempts_by_key()[key] == 2

    def test_truncation_fault_is_quarantined_on_next_read(self, tmp_path):
        spec = _solo_spec()
        key = spec.expand()[0].key()
        cache = ResultCache(tmp_path / "cache")
        with JobQueue(tmp_path / "q.db") as queue:
            queue.enqueue(spec)
            injector = FaultInjector(FaultPlan(corrupt_keys=(key,)))
            QueueWorker(queue, "w1", cache=cache, injector=injector).run()
        assert cache._path_for(key).read_text(encoding="utf-8") == TRUNCATED_PREFIX
        fresh = ResultCache(tmp_path / "cache")
        assert not fresh.contains(key)
        assert fresh.quarantined == 1


class TestChaosDifferential:
    """The acceptance test from the issue, driven through the real CLI."""

    CHAOS_ARGS = [
        "--chaos-seed", "29",
        "--chaos-kills", "3",
        "--chaos-errors", "1",
        "--chaos-stalls", "1",
        "--chaos-corrupts", "1",
        "--chaos-stall-seconds", "0.05",
    ]

    def _campaign_args(self, db, jsonl, cache_dir):
        return [
            "campaign", "e2",
            "--horizon", "2000",
            "--resume", str(db),
            "--jsonl", str(jsonl),
            "--cache-dir", str(cache_dir),
        ]

    def test_chaos_ridden_resumed_run_matches_single_shot(self, tmp_path):
        chaos_jsonl = tmp_path / "chaos.jsonl"
        plain_jsonl = tmp_path / "plain.jsonl"
        chaos_db = tmp_path / "chaos.db"
        cache_dir = tmp_path / "cache"

        # Single worker + zero respawn budget: the first SIGKILL of each
        # invocation aborts the drain resumably, so three planned kills force
        # (at least) three interrupted invocations before one completes.
        chaos_args = self._campaign_args(chaos_db, chaos_jsonl, cache_dir) + [
            "--workers", "1",
            "--max-respawns", "0",
            "--lease-seconds", "0.5",
            *self.CHAOS_ARGS,
        ]
        resumes = 0
        for _ in range(12):
            try:
                run(chaos_args)
                break
            except CampaignError:
                resumes += 1
        else:
            pytest.fail("chaos drain never converged")
        assert resumes >= 2, "the campaign must survive being resumed repeatedly"
        assert chaos_jsonl.is_file()

        # The unfaulted single-shot reference, through the same durable path.
        run(self._campaign_args(tmp_path / "plain.db", plain_jsonl, tmp_path / "c2"))
        assert chaos_jsonl.read_bytes() == plain_jsonl.read_bytes()

        with JobQueue(chaos_db) as queue:
            status = queue.status()
            # Every fault was absorbed: nothing poisoned, nothing dropped...
            assert status.counts.get("poisoned", 0) == 0
            assert queue.unfinished() == 0
            # ...and no run ever executed more than max_attempts times.
            attempts = queue.attempts_by_key()
            max_attempts = queue.max_attempts
            assert max(attempts.values()) <= max_attempts
            # The kill and error faults each consumed a retry.
            assert sum(1 for count in attempts.values() if count > 1) >= 3

        # The truncated cache entry is quarantined on its next read, never
        # served: the fault plan is reconstructible from the same seed.
        plan = FaultPlan.sample(
            sorted(attempts), seed=29, kills=3, errors=1, stalls=1, corrupts=1
        )
        fresh = ResultCache(cache_dir)
        (corrupt_key,) = plan.corrupt_keys
        assert fresh.get(corrupt_key) is None
        assert fresh.quarantined == 1

    def test_poisoned_runs_are_reported_not_dropped(self, tmp_path):
        # A retry budget of 1 turns a single injected failure into quarantine:
        # the resume must *report* the poisoned run, never silently drop it.
        spec = _grid_spec()
        doomed_key = spec.expand()[0].key()
        engine = DurableCampaignEngine(
            tmp_path / "q.db",
            fault_plan=lambda keys: FaultPlan(error_keys=(doomed_key,)),
            max_attempts=1,
            backoff_base=0.01,
            backoff_cap=0.01,
        )
        with pytest.raises(PoisonedRunsError, match="InjectedFault"):
            engine.run(spec)
        with engine.open_queue() as queue:
            status = queue.status()
            assert status.counts.get("poisoned") == 1
            assert status.poison[0][0] == doomed_key
            assert any("POISON" in line for line in status.lines())
