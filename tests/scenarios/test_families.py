"""Scenario families: the registry, the new generators, and RNG-stream pinning."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.crash import CrashPattern
from repro.scenarios import (
    AlternatingSynchronyGenerator,
    CrashRecoveryChurnGenerator,
    ScenarioSpec,
    available_families,
    build_generator,
    build_scenario,
    family_descriptions,
)
from repro.schedules.adversary import CarrierRotationAdversary, EventuallySynchronousGenerator
from repro.schedules.random_schedule import RandomGenerator
from repro.schedules.round_robin import RoundRobinGenerator
from repro.schedules.set_timely import SetTimelyGenerator


class TestRegistry:
    def test_all_families_registered(self):
        assert set(available_families()) == {
            "round-robin",
            "random",
            "figure1",
            "set-timely",
            "eventually-synchronous",
            "carrier-rotation",
            "crash-churn",
            "alternating-epochs",
            "spliced-adversary",
            "dist-heavy-tail",
            "dist-diurnal",
            "dist-correlated-failures",
            "dist-rolling-restart",
            "dist-sticky-failover",
        }
        assert all(family_descriptions().values())

    def test_unknown_family_fails_with_the_list(self):
        with pytest.raises(ConfigurationError, match="unknown schedule family"):
            build_generator({"schedule": "wormhole", "n": 3})

    def test_missing_required_parameter_reported_by_name(self):
        with pytest.raises(ConfigurationError, match="requires parameter 'p_set'"):
            build_generator({"schedule": "set-timely", "n": 3})

    def test_figure1_rejects_silent_processes(self):
        # n=4 with the default roles leaves process 4 with zero steps — faulty
        # by the paper's definition, contradicting the failure-free claim and
        # corrupting any verdict computed against the correct set.
        with pytest.raises(ConfigurationError, match="without any"):
            build_generator({"schedule": "figure1", "n": 4})
        generator = build_generator({"schedule": "figure1", "n": 3})
        assert set(generator.generate(60).steps) == {1, 2, 3}
        wider = build_generator(
            {"schedule": "figure1", "n": 4, "rotating": [1, 2, 4], "reference": 3}
        )
        assert set(wider.generate(60).steps) == {1, 2, 3, 4}


class TestRNGStreamPinning:
    """Declarative building must reproduce direct construction byte-for-byte."""

    def test_set_timely_stream_identical(self):
        direct = SetTimelyGenerator(
            n=5,
            p_set={1, 2},
            q_set={1, 2, 3},
            bound=3,
            seed=11,
            crash_pattern=CrashPattern.initial_crashes(5, {5}),
        )
        declarative = build_generator(
            {
                "schedule": "set-timely",
                "n": 5,
                "p_set": [1, 2],
                "q_set": [1, 2, 3],
                "bound": 3,
                "seed": 11,
                "crashes": [5],
            }
        )
        assert declarative.generate(5_000).steps == direct.generate(5_000).steps

    def test_random_stream_identical(self):
        direct = RandomGenerator(4, seed=23)
        declarative = build_generator({"schedule": "random", "n": 4, "seed": 23})
        assert declarative.generate(2_000).steps == direct.generate(2_000).steps

    def test_eventually_synchronous_stream_identical(self):
        direct = EventuallySynchronousGenerator(4, chaos_steps=300, seed=5)
        declarative = build_generator(
            {"schedule": "eventually-synchronous", "n": 4, "chaos_steps": 300, "seed": 5}
        )
        assert declarative.generate(1_000).steps == direct.generate(1_000).steps

    def test_carrier_rotation_stream_identical(self):
        direct = CarrierRotationAdversary(4, carriers={1, 2})
        declarative = build_generator(
            {"schedule": "carrier-rotation", "n": 4, "carriers": [1, 2]}
        )
        assert declarative.generate(1_000).steps == direct.generate(1_000).steps

    def test_round_robin_stream_identical(self):
        direct = RoundRobinGenerator(4)
        declarative = build_generator({"schedule": "round-robin", "n": 4})
        assert declarative.generate(100).steps == direct.generate(100).steps


class TestCrashRecoveryChurn:
    def test_everyone_steps_infinitely_often(self):
        generator = CrashRecoveryChurnGenerator(5, seed=3, period=40, outage=20, churn=2)
        steps = generator.generate(4_000).steps
        for pid in range(1, 6):
            assert steps.count(pid) > 400

    def test_down_processes_skip_the_outage_window(self):
        # churn=1, deterministic seed: in every cycle some process is absent
        # from the first `outage` emitted steps but present later in the cycle.
        generator = CrashRecoveryChurnGenerator(4, seed=7, period=32, outage=16, churn=1)
        steps = generator.generate(32 * 10).steps
        churn_cycles = 0
        for cycle in range(10):
            window = steps[cycle * 32 : cycle * 32 + 16]
            rest = steps[cycle * 32 + 16 : (cycle + 1) * 32]
            missing = set(range(1, 5)) - set(window)
            if missing:
                churn_cycles += 1
                assert missing <= set(rest)
        assert churn_cycles >= 8  # churn=1 picks somebody almost every cycle

    def test_no_process_down_twice_in_a_row(self):
        generator = CrashRecoveryChurnGenerator(3, seed=1, period=20, outage=10, churn=1)
        steps = generator.generate(20 * 20).steps
        previous_missing: set = set()
        for cycle in range(20):
            window = steps[cycle * 20 : cycle * 20 + 10]
            missing = set(range(1, 4)) - set(window)
            assert not (missing & previous_missing)
            previous_missing = missing

    def test_deterministic_and_seed_sensitive(self):
        a = CrashRecoveryChurnGenerator(4, seed=5).generate(1_000).steps
        b = CrashRecoveryChurnGenerator(4, seed=5).generate(1_000).steps
        c = CrashRecoveryChurnGenerator(4, seed=6).generate(1_000).steps
        assert a == b
        assert a != c

    def test_permanent_crashes_honoured(self):
        generator = CrashRecoveryChurnGenerator(
            4, seed=2, crash_pattern=CrashPattern.initial_crashes(4, {4})
        )
        assert 4 not in generator.generate(500).steps

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashRecoveryChurnGenerator(3, period=0)
        with pytest.raises(ConfigurationError):
            CrashRecoveryChurnGenerator(3, period=10, outage=11)
        with pytest.raises(ConfigurationError):
            CrashRecoveryChurnGenerator(3, churn=-1)


class TestAlternatingSynchrony:
    def test_first_sync_epoch_is_round_robin(self):
        generator = AlternatingSynchronyGenerator(3, seed=0, sync_epoch=9, async_epoch=5)
        assert generator.generate(9).steps == (1, 2, 3) * 3

    def test_bounded_epochs_report_a_guarantee(self):
        bounded = AlternatingSynchronyGenerator(4, sync_epoch=16, async_epoch=16)
        guarantee = bounded.guarantee()
        assert guarantee is not None
        assert guarantee.p_set == frozenset({1, 2, 3, 4})
        assert guarantee.bound == 16 + 4
        growing = AlternatingSynchronyGenerator(4, epoch_growth=2)
        assert growing.guarantee() is None

    def test_dynamic_crashes_void_the_guarantee(self):
        # A faulty process's pre-crash steps stretch P-free windows across
        # epoch boundaries, so a timed crash must drop the certificate ...
        late_crash = AlternatingSynchronyGenerator(
            4, crash_pattern=CrashPattern.crashes_at(4, {1: 1_000})
        )
        assert late_crash.guarantee() is None
        # ... while initial crashes (the faulty never step) keep it.
        initial = AlternatingSynchronyGenerator(
            4, crash_pattern=CrashPattern.initial_crashes(4, {1})
        )
        guarantee = initial.guarantee()
        assert guarantee is not None
        assert guarantee.p_set == frozenset({2, 3, 4})

    def test_epochs_grow(self):
        generator = AlternatingSynchronyGenerator(
            2, seed=0, sync_epoch=4, async_epoch=4, epoch_growth=4
        )
        # Epoch 0: 4 sync + 4 async; epoch 1: 8 sync + 8 async.
        steps = generator.generate(4 + 4 + 8).steps
        assert steps[:4] == (1, 2, 1, 2)
        assert steps[8:16] == (1, 2, 1, 2, 1, 2, 1, 2)

    def test_crashes_honoured_in_both_phases(self):
        generator = AlternatingSynchronyGenerator(
            3, seed=4, crash_pattern=CrashPattern.initial_crashes(3, {2})
        )
        assert 2 not in generator.generate(600).steps

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AlternatingSynchronyGenerator(3, sync_epoch=0)
        with pytest.raises(ConfigurationError):
            AlternatingSynchronyGenerator(3, epoch_growth=-1)


class TestSplicedAdversary:
    def test_prefix_then_adversary(self):
        generator = build_generator(
            {"schedule": "spliced-adversary", "n": 3, "carriers": [1, 2], "switch_at": 6}
        )
        direct_suffix = CarrierRotationAdversary(3, carriers={1, 2})
        steps = generator.generate(6 + 200).steps
        assert steps[:6] == (1, 2, 3, 1, 2, 3)
        assert steps[6:] == direct_suffix.generate(200).steps

    def test_default_carriers_all_but_last(self):
        generator = build_generator({"schedule": "spliced-adversary", "n": 4})
        assert "carriers=[1, 2, 3]" in generator.description

    def test_unknown_prefix_rejected(self):
        with pytest.raises(ConfigurationError, match="prefix"):
            build_generator(
                {"schedule": "spliced-adversary", "n": 3, "prefix": "quantum"}
            )

    def test_crash_steps_keep_their_global_meaning_across_the_splice(self):
        # A crash prescribed at global step 500 must hold on both sides of a
        # 1000-step splice: the process takes no step at index >= 500, and
        # the reported pattern round-trips the prescription unchanged.
        generator = build_generator(
            {
                "schedule": "spliced-adversary",
                "n": 3,
                "carriers": [1, 2],
                "switch_at": 1_000,
                "crash_steps": {"2": 500},
            }
        )
        assert generator.crash_pattern.crash_steps == {2: 500}
        steps = generator.generate(2_000).steps
        assert 2 in steps[:500]
        assert 2 not in steps[500:]
        # A post-splice crash lands at its global step too.
        late = build_generator(
            {
                "schedule": "spliced-adversary",
                "n": 3,
                "carriers": [1, 2],
                "switch_at": 100,
                "crash_steps": {"2": 150},
            }
        )
        assert late.crash_pattern.crash_steps == {2: 150}
        late_steps = late.generate(600).steps
        assert 2 in late_steps[:150]
        assert 2 not in late_steps[150:]


class TestScenarioSpec:
    def test_build_and_round_trip_params(self):
        spec = ScenarioSpec(
            family="crash-churn",
            params={"n": 4, "seed": 3, "period": 32, "outage": 8},
            perturbations=({"kind": "noise", "rate": 0.1, "seed": 2},),
        )
        generator = spec.build()
        assert generator.n == 4
        assert "perturb(noise" in generator.description
        flat = spec.to_campaign_params()
        assert flat["schedule"] == "crash-churn"
        rebuilt = build_generator(flat)
        assert rebuilt.generate(500).steps == generator.generate(500).steps

    def test_describe_mentions_the_family(self):
        spec = ScenarioSpec(family="round-robin", params={"n": 3})
        assert "round-robin" in spec.describe()

    def test_perturbations_apply_in_order(self):
        base = ScenarioSpec(family="round-robin", params={"n": 3})
        noisy = ScenarioSpec(
            family="round-robin",
            params={"n": 3},
            perturbations=(
                {"kind": "noise", "rate": 0.2, "seed": 1},
                {"kind": "stutter", "rate": 0.2, "seed": 2},
            ),
        )
        description = noisy.build().description
        assert description.index("stutter") < description.index("noise")
        assert base.build().generate(50).steps != noisy.build().generate(50).steps
