"""Scenario combinators: concat, interleave, perturb, with_crashes."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.crash import CrashPattern
from repro.scenarios import concat, interleave, perturb, with_crashes
from repro.schedules.adversary import CarrierRotationAdversary
from repro.schedules.round_robin import RoundRobinGenerator
from repro.schedules.random_schedule import RandomGenerator


class TestConcat:
    def test_switches_at_the_exact_step(self):
        head = RoundRobinGenerator(3)
        tail = RoundRobinGenerator(3, order=(3, 2, 1))
        spliced = concat(head, tail, switch_at=4)
        steps = spliced.generate(10).steps
        assert steps == (1, 2, 3, 1, 3, 2, 1, 3, 2, 1)

    def test_faultiness_comes_from_the_suffix(self):
        head = RoundRobinGenerator(3)
        tail = RoundRobinGenerator(
            3, crash_pattern=CrashPattern.initial_crashes(3, {3})
        )
        spliced = concat(head, tail, switch_at=3)
        assert spliced.faulty == frozenset({3})
        # The prefix still schedules 3; the suffix never does.
        assert 3 in spliced.generate(3).steps
        assert 3 not in spliced.generate(20).steps[3:]

    def test_crash_steps_rebased_to_global_indices(self):
        # Tail-local crash step 10 with a 1000-step prefix: the process is
        # alive (and scheduled) throughout the prefix, so the reported crash
        # step must be global 1010, not tail-local 10.
        head = RoundRobinGenerator(3)
        tail = RoundRobinGenerator(3, crash_pattern=CrashPattern.crashes_at(3, {3: 10}))
        spliced = concat(head, tail, switch_at=1000)
        assert spliced.crash_pattern.crash_steps == {3: 1010}
        assert not spliced.crash_pattern.is_crashed(3, 500)
        steps = spliced.generate(1020).steps
        assert 3 in steps[:1000]          # scheduled during the whole prefix
        assert 3 in steps[1000:1010]      # and until its tail-local crash
        assert 3 not in steps[1010:]

    def test_initial_tail_crash_inherits_head_crash_step(self):
        tail = RoundRobinGenerator(3, crash_pattern=CrashPattern.initial_crashes(3, {3}))
        never_scheduled = concat(
            RoundRobinGenerator(3, crash_pattern=CrashPattern.initial_crashes(3, {3})),
            tail,
            switch_at=12,
        )
        assert never_scheduled.crash_pattern.crash_steps == {3: 0}
        alive_in_prefix = concat(RoundRobinGenerator(3), tail, switch_at=12)
        assert alive_in_prefix.crash_pattern.crash_steps == {3: 12}

    def test_mismatched_n_and_negative_switch_rejected(self):
        with pytest.raises(ConfigurationError):
            concat(RoundRobinGenerator(3), RoundRobinGenerator(4), switch_at=5)
        with pytest.raises(ConfigurationError):
            concat(RoundRobinGenerator(3), RoundRobinGenerator(3), switch_at=-1)

    def test_nests_with_other_combinators(self):
        inner = concat(RoundRobinGenerator(4), CarrierRotationAdversary(4, {1, 2}), 6)
        outer = concat(RoundRobinGenerator(4, order=(4, 3, 2, 1)), inner, 2)
        steps = outer.generate(9).steps
        assert steps[:2] == (4, 3)
        assert steps[2:8] == (1, 2, 3, 4, 1, 2)


class TestInterleave:
    def test_blocks_cycle_through_parts(self):
        merged = interleave(
            RoundRobinGenerator(4, order=(1, 2)),
            RoundRobinGenerator(4, order=(3, 4)),
            blocks=(2, 1),
        )
        assert merged.generate(9).steps == (1, 2, 3, 1, 2, 4, 1, 2, 3)

    def test_faulty_only_when_faulty_everywhere(self):
        crashed = CrashPattern.initial_crashes(3, {3})
        part_a = RoundRobinGenerator(3, crash_pattern=crashed)
        part_b = RoundRobinGenerator(3)
        assert interleave(part_a, part_b).faulty == frozenset()
        part_c = RoundRobinGenerator(3, order=(1, 2), crash_pattern=crashed)
        both = interleave(part_a, part_c)
        assert both.faulty == frozenset({3})
        assert 3 not in both.generate(40).steps

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            interleave(RoundRobinGenerator(3))
        with pytest.raises(ConfigurationError):
            interleave(RoundRobinGenerator(3), RoundRobinGenerator(3), blocks=(1,))
        with pytest.raises(ConfigurationError):
            interleave(RoundRobinGenerator(3), RoundRobinGenerator(3), blocks=0)


class TestPerturb:
    def test_rate_zero_is_identity(self):
        base = RandomGenerator(4, seed=3)
        noisy = perturb(RandomGenerator(4, seed=3), kind="noise", rate=0.0, seed=9)
        assert noisy.generate(200).steps == base.generate(200).steps

    def test_noise_inserts_steps_deterministically(self):
        one = perturb(RoundRobinGenerator(3), kind="noise", rate=0.5, seed=7)
        two = perturb(RoundRobinGenerator(3), kind="noise", rate=0.5, seed=7)
        assert one.generate(100).steps == two.generate(100).steps
        other_seed = perturb(RoundRobinGenerator(3), kind="noise", rate=0.5, seed=8)
        assert one.generate(100).steps != other_seed.generate(100).steps

    def test_noise_preserves_inner_steps_as_subsequence(self):
        inner_steps = RoundRobinGenerator(3).generate(60).steps
        noisy_steps = perturb(
            RoundRobinGenerator(3), kind="noise", rate=0.3, seed=1
        ).generate(120).steps
        iterator = iter(noisy_steps)
        assert all(step in iterator for step in inner_steps)

    def test_stutter_duplicates_steps(self):
        stuttered = perturb(RoundRobinGenerator(2), kind="stutter", rate=1.0, seed=0)
        assert stuttered.generate(8).steps == (1, 1, 2, 2, 1, 1, 2, 2)

    def test_noise_never_revives_crashed_processes(self):
        crashed = CrashPattern.initial_crashes(4, {4})
        noisy = perturb(
            RoundRobinGenerator(4, crash_pattern=crashed), kind="noise", rate=0.9, seed=5
        )
        assert 4 not in noisy.generate(300).steps
        assert noisy.faulty == frozenset({4})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            perturb(RoundRobinGenerator(2), kind="teleport")
        with pytest.raises(ConfigurationError):
            perturb(RoundRobinGenerator(2), rate=1.5)

    def test_timed_inner_crashes_rejected_with_guidance(self):
        # Insertions shift output indices, so a timed crash step would become
        # false in the perturbed stream; the sound spelling wraps crashes
        # around the perturbation instead.
        timed = RoundRobinGenerator(3, crash_pattern=CrashPattern.crashes_at(3, {2: 10}))
        with pytest.raises(ConfigurationError, match="with_crashes"):
            perturb(timed, kind="noise", rate=0.5, seed=1)
        sound = with_crashes(
            perturb(RoundRobinGenerator(3), kind="noise", rate=0.5, seed=1), {2: 10}
        )
        steps = sound.generate(60).steps
        assert 2 in steps[:10]
        assert 2 not in steps[10:]
        assert sound.faulty == frozenset({2})


class TestWithCrashes:
    def test_filters_steps_and_merges_faulty(self):
        base = RoundRobinGenerator(4)
        filtered = with_crashes(base, {3: 8})
        steps = filtered.generate(24).steps
        assert 3 in steps[:8]
        assert 3 not in steps[8:]
        assert filtered.faulty == frozenset({3})

    def test_accepts_iterable_and_pattern(self):
        assert with_crashes(RoundRobinGenerator(3), [2]).faulty == frozenset({2})
        pattern = CrashPattern.crashes_at(3, {1: 5})
        assert with_crashes(RoundRobinGenerator(3), pattern).faulty == frozenset({1})

    def test_merges_with_inner_pattern(self):
        inner = RoundRobinGenerator(4, crash_pattern=CrashPattern.initial_crashes(4, {1}))
        combined = with_crashes(inner, [2])
        assert combined.faulty == frozenset({1, 2})
        assert set(combined.generate(30).steps) == {3, 4}

    def test_starvation_fails_loudly(self):
        # Round-robin over {1} with process 1 crashed: nothing can ever pass.
        starved = with_crashes(RoundRobinGenerator(2, order=(1,)), [1])
        starved.guard = 50
        with pytest.raises(ConfigurationError, match="starved"):
            starved.generate(1)
