"""Scenarios wired through the campaign engine and the agreement runner."""

from repro.agreement.problem import distinct_inputs
from repro.agreement.runner import solve_agreement
from repro.campaign import CampaignEngine, CampaignSpec
from repro.scenarios import ScenarioSpec
from repro.types import AgreementInstance


class TestScenariosAsCampaignAxes:
    def test_scenario_family_is_a_sweepable_axis(self):
        spec = CampaignSpec(
            name="family-axis",
            kind="detector",
            base={"n": 3, "t": 1, "k": 1, "seed": 4, "horizon": 2_000},
            axes={"schedule": ["round-robin", "crash-churn", "alternating-epochs"]},
        )
        result = CampaignEngine().run(spec)
        assert [record.params["schedule"] for record in result.records] == [
            "round-robin",
            "crash-churn",
            "alternating-epochs",
        ]
        for record in result.records:
            assert record.payload["satisfied"] is True

    def test_perturbations_are_part_of_the_run_identity(self):
        base = {"n": 3, "t": 1, "k": 1, "seed": 4, "horizon": 1_500, "schedule": "crash-churn"}
        spec = CampaignSpec(
            name="perturbation-axis",
            kind="detector",
            runs=[
                dict(base),
                {**base, "perturbations": [{"kind": "stutter", "rate": 0.2, "seed": 1}]},
            ],
        )
        result = CampaignEngine().run(spec)
        keys = {record.key for record in result.records}
        assert len(keys) == 2  # the perturbed run is a distinct cacheable artifact


class TestScenariosThroughAgreementRunner:
    def test_solve_agreement_accepts_a_scenario_spec(self):
        problem = AgreementInstance(t=1, k=2, n=3)  # t < k: trivial protocol, fast
        report = solve_agreement(
            problem=problem,
            inputs=distinct_inputs(3),
            schedule=ScenarioSpec(
                family="alternating-epochs",
                params={"n": 3, "seed": 2, "sync_epoch": 8, "async_epoch": 8},
            ),
            max_steps=20_000,
        )
        assert report.verdict.satisfied
        assert report.all_correct_decided

    def test_scenario_crash_pattern_supplies_the_correct_set(self):
        problem = AgreementInstance(t=1, k=2, n=3)
        report = solve_agreement(
            problem=problem,
            inputs=distinct_inputs(3),
            schedule=ScenarioSpec(
                family="round-robin", params={"n": 3, "crashes": [3]}
            ),
            max_steps=20_000,
        )
        assert report.correct == frozenset({1, 2})
        assert report.verdict.satisfied
