"""Tests for the immediate snapshot object and the IIS model (experiment E9)."""

import random

from repro.core.timeliness import analyze_timeliness
from repro.core.schedule import Schedule
from repro.iis.immediate_snapshot import ImmediateSnapshot
from repro.iis.iterated import (
    FINAL_VIEW,
    IteratedImmediateSnapshotAutomaton,
    phase_shifted_round_schedule,
)
from repro.runtime.automaton import FunctionAutomaton
from repro.runtime.simulator import Simulator


def run_immediate_snapshot(n, schedule_steps, name="is"):
    obj = ImmediateSnapshot(name=name, n=n)
    views = {}

    def factory(pid):
        def program(automaton, ctx):
            view = yield from obj.write_and_snapshot(automaton.pid, f"v{automaton.pid}")
            views[automaton.pid] = view
            automaton.publish("view", view)
        return program

    automata = {pid: FunctionAutomaton(pid=pid, n=n, function=factory(pid)) for pid in range(1, n + 1)}
    simulator = Simulator(n=n, automata=automata)
    simulator.run(Schedule(steps=tuple(schedule_steps), n=n))
    return views


class TestImmediateSnapshot:
    def assert_is_properties(self, views, participants):
        # Self-inclusion.
        for pid, view in views.items():
            assert view[pid] == f"v{pid}"
        # Containment: views are totally ordered by inclusion.
        ordered = sorted(views.values(), key=len)
        for smaller, larger in zip(ordered, ordered[1:]):
            assert set(smaller.items()) <= set(larger.items())
        # Immediacy: q in view(p) implies view(q) ⊆ view(p).
        for p, view_p in views.items():
            for q in view_p:
                if q in views:
                    assert set(views[q].items()) <= set(view_p.items())

    def test_sequential_execution(self):
        views = run_immediate_snapshot(3, [1] * 20 + [2] * 20 + [3] * 20)
        self.assert_is_properties(views, {1, 2, 3})
        assert len(views[1]) == 1 and len(views[3]) == 3

    def test_synchronous_execution_everyone_sees_everyone(self):
        views = run_immediate_snapshot(3, [1, 2, 3] * 20)
        self.assert_is_properties(views, {1, 2, 3})
        assert all(len(view) == 3 for view in views.values())

    def test_random_schedules_preserve_properties(self):
        for seed in range(12):
            rng = random.Random(seed)
            steps = [rng.randint(1, 4) for _ in range(400)]
            views = run_immediate_snapshot(4, steps, name=("is", seed))
            if len(views) == 4:
                self.assert_is_properties(views, {1, 2, 3, 4})


class TestIteratedModel:
    def run_iis(self, n, rounds, schedule):
        automata = {
            pid: IteratedImmediateSnapshotAutomaton(pid=pid, n=n, rounds=rounds, input_value=f"x{pid}")
            for pid in range(1, n + 1)
        }
        simulator = Simulator(n=n, automata=automata)
        simulator.run(schedule)
        return simulator, automata

    def test_synchronous_runs_propagate_everything(self):
        n, rounds = 3, 2
        schedule = Schedule.round_robin(n, rounds=300)
        simulator, automata = self.run_iis(n, rounds, schedule)
        for pid, automaton in automata.items():
            final = simulator.output_of(pid, FINAL_VIEW)
            assert final is not None
            assert set(final.keys()) == {1, 2, 3}

    def test_paper_remark_timely_process_can_be_invisible(self):
        """Section 6: a process can be timely at the step level yet never appear
        in any other process's IIS views."""
        n, rounds, shifted = 3, 3, 3
        schedule = phase_shifted_round_schedule(n=n, rounds=rounds, shifted=shifted)
        simulator, automata = self.run_iis(n, rounds, schedule)

        # The shifted process is timely with respect to everyone: constant bound.
        witness = analyze_timeliness(schedule, {shifted}, {1, 2})
        assert witness.minimal_bound <= 2 * n * (n + 1) + 1
        assert not witness.saturated

        # Yet it never shows up in the other processes' views, in any round.
        for pid in (1, 2):
            for view in automata[pid].views():
                assert shifted not in view
        # While the shifted process itself saw the others (it arrives last).
        shifted_views = automata[shifted].views()
        assert shifted_views
        assert set(shifted_views[0].keys()) == {1, 2, 3}
