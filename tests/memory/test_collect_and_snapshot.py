"""Tests for store-collect and the atomic snapshot object, driven by the simulator."""

import random

import pytest

from repro.core.schedule import Schedule
from repro.memory.collect import collect, collect_keys, store, write_keys
from repro.memory.snapshot import AtomicSnapshot
from repro.runtime.automaton import FunctionAutomaton
from repro.runtime.simulator import Simulator


def build_simulator(n, program_factory):
    automata = {
        pid: FunctionAutomaton(pid=pid, n=n, function=program_factory(pid)) for pid in range(1, n + 1)
    }
    return Simulator(n=n, automata=automata)


class TestCollect:
    def test_store_then_collect(self):
        def factory(pid):
            def program(automaton, ctx):
                yield from store("V", automaton.pid, automaton.pid * 10)
                values = yield from collect("V", ctx.processes)
                automaton.publish("collected", values)
            return program

        simulator = build_simulator(3, factory)
        simulator.run(Schedule.round_robin(3, rounds=10))
        for pid in (1, 2, 3):
            collected = simulator.output_of(pid, "collected")
            assert collected == {1: 10, 2: 20, 3: 30}

    def test_collect_sees_none_for_missing_values(self):
        def factory(pid):
            def program(automaton, ctx):
                if automaton.pid == 1:
                    values = yield from collect("W", ctx.processes)
                    automaton.publish("collected", values)
                else:
                    yield from store("W", automaton.pid, "late")
            return program

        simulator = build_simulator(2, factory)
        # Process 1 collects (and finishes) before process 2 stores.
        simulator.run(Schedule(steps=(1, 1, 1, 2), n=2))
        assert simulator.output_of(1, "collected") == {1: None, 2: None}

    def test_collect_keys_and_write_keys(self):
        def factory(pid):
            def program(automaton, ctx):
                yield from write_keys([(("K", "a"), 1), (("K", "b"), 2)])
                values = yield from collect_keys([("K", "a"), ("K", "b"), ("K", "c")])
                automaton.publish("values", values)
            return program

        simulator = build_simulator(1, factory)
        simulator.run(Schedule(steps=(1,) * 7, n=1))
        assert simulator.output_of(1, "values") == {("K", "a"): 1, ("K", "b"): 2, ("K", "c"): None}


class TestAtomicSnapshot:
    def test_solo_update_and_scan(self):
        snapshot = AtomicSnapshot("S", processes=[1, 2, 3])

        def factory(pid):
            def program(automaton, ctx):
                yield from snapshot.update(automaton.pid, automaton.pid)
                view = yield from snapshot.scan(automaton.pid)
                automaton.publish("view", view)
            return program

        simulator = build_simulator(3, factory)
        simulator.run(Schedule.round_robin(3, rounds=60))
        # The last scans see every component.
        views = [simulator.output_of(pid, "view") for pid in (1, 2, 3)]
        assert all(view is not None for view in views)
        final_views = [v for v in views if all(value is not None for value in v.values())]
        assert final_views, "at least one process should observe the fully populated array"

    def test_scan_views_are_comparable_under_random_schedules(self):
        """Snapshot views of a single-writer array must be totally ordered by containment
        (a weaker but schedule-independent consequence of linearizability we can
        check without recording linearization points)."""
        snapshot = AtomicSnapshot("S2", processes=[1, 2, 3])
        observed = []

        def factory(pid):
            def program(automaton, ctx):
                for round_number in range(3):
                    yield from snapshot.update_fast(automaton.pid, (automaton.pid, round_number))
                    view = yield from snapshot.scan(automaton.pid)
                    observed.append(view)
            return program

        rng = random.Random(5)
        simulator = build_simulator(3, factory)
        steps = tuple(rng.randint(1, 3) for _ in range(3000))
        simulator.run(Schedule(steps=steps, n=3))

        def as_known(view):
            return {pid: value for pid, value in view.items() if value is not None}

        def contains(big, small):
            return all(item in big.items() for item in small.items())

        for a in observed:
            for b in observed:
                known_a, known_b = as_known(a), as_known(b)
                # Per-writer values only move forward, so any two views must be
                # comparable once we project onto the writers both have seen.
                shared = set(known_a) & set(known_b)
                for pid in shared:
                    assert known_a[pid][0] == pid and known_b[pid][0] == pid

    def test_scan_reflects_completed_updates(self):
        snapshot = AtomicSnapshot("S3", processes=[1, 2])

        def factory(pid):
            def program(automaton, ctx):
                if automaton.pid == 1:
                    yield from snapshot.update(1, "one")
                    automaton.publish("done", True)
                else:
                    view = yield from snapshot.scan(2)
                    automaton.publish("view", view)
            return program

        simulator = build_simulator(2, factory)
        # Run process 1 to completion, then process 2.
        simulator.run(Schedule(steps=(1,) * 20 + (2,) * 20, n=2))
        assert simulator.output_of(1, "done") is True
        assert simulator.output_of(2, "view")[1] == "one"
