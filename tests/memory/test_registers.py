"""Unit tests for the atomic register file (repro.memory.registers)."""

import pytest

from repro.errors import ConfigurationError, RegisterError
from repro.memory.registers import Register, RegisterFile


class TestRegister:
    def test_read_write(self):
        register = Register(name="r")
        assert register.read() is None
        register.write(42)
        assert register.read() == 42
        assert register.write_count == 1
        assert register.read_count == 2

    def test_single_writer_enforced(self):
        register = Register(name="r", writer=1)
        register.write(1, writer=1)
        with pytest.raises(RegisterError):
            register.write(2, writer=2)

    def test_anonymous_writer_allowed_on_owned_register(self):
        # Writers without an identity (e.g. test scaffolding) are not blocked.
        register = Register(name="r", writer=1)
        register.write(3, writer=None)
        assert register.value == 3


class TestRegisterFile:
    def test_lazy_creation_with_default_none(self):
        registers = RegisterFile()
        assert registers.read("unknown") is None
        registers.write("unknown", 7)
        assert registers.read("unknown") == 7

    def test_declare_sets_initial_value(self):
        registers = RegisterFile()
        registers.declare(("Heartbeat", 1), initial=0, writer=1)
        assert registers.read(("Heartbeat", 1)) == 0

    def test_declare_array(self):
        registers = RegisterFile()
        registers.declare_array("Heartbeat", (1, 2, 3), initial=0, owner_from_index=True)
        assert registers.read(("Heartbeat", 2)) == 0
        with pytest.raises(RegisterError):
            registers.write(("Heartbeat", 2), 5, writer=3)

    def test_declare_array_owner_from_index_rejects_non_int_indices(self):
        # A non-integer index cannot name an owning process: minting an
        # unowned register here would silently drop single-writer checks.
        registers = RegisterFile()
        with pytest.raises(ConfigurationError, match="integer process-id"):
            registers.declare_array("Counter", (1, ("A", 2)), initial=0, owner_from_index=True)
        with pytest.raises(ConfigurationError, match="integer process-id"):
            registers.declare_array("Flag", (True,), initial=0, owner_from_index=True)
        # Without owner_from_index the same indices are fine (and unowned).
        registers.declare_array("Counter", (1, ("A", 2)), initial=0)
        registers.write(("Counter", ("A", 2)), 5, writer=3)
        assert registers.read(("Counter", ("A", 2))) == 5

    def test_redeclare_resets_value(self):
        registers = RegisterFile()
        registers.declare("r", initial=1)
        registers.write("r", 9)
        registers.declare("r", initial=1)
        assert registers.read("r") == 1

    def test_peek_does_not_count(self):
        registers = RegisterFile()
        registers.declare("r", initial=5)
        assert registers.peek("r") == 5
        assert registers.total_reads() == 0

    def test_operation_counts(self):
        registers = RegisterFile()
        registers.write("a", 1)
        registers.write("b", 2)
        registers.read("a")
        assert registers.total_writes() == 2
        assert registers.total_reads() == 1

    def test_names_and_exists(self):
        registers = RegisterFile()
        registers.declare("a", 0)
        registers.read("b")
        assert registers.exists("a")
        assert registers.exists("b")
        assert not registers.exists("c")
        assert set(registers.names()) == {"a", "b"}

    def test_snapshot_values(self):
        registers = RegisterFile()
        registers.write("x", 1)
        registers.write("y", 2)
        assert registers.snapshot_values() == {"x": 1, "y": 2}
