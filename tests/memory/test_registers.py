"""Unit tests for the atomic register file (repro.memory.registers)."""

from types import MappingProxyType

import pytest

from repro.errors import ConfigurationError, RegisterError
from repro.memory.registers import Register, RegisterArena, RegisterFile


class TestRegister:
    def test_read_write(self):
        register = Register(name="r")
        assert register.read() is None
        register.write(42)
        assert register.read() == 42
        assert register.write_count == 1
        assert register.read_count == 2

    def test_single_writer_enforced(self):
        register = Register(name="r", writer=1)
        register.write(1, writer=1)
        with pytest.raises(RegisterError):
            register.write(2, writer=2)

    def test_anonymous_writer_allowed_on_owned_register(self):
        # Writers without an identity (e.g. test scaffolding) are not blocked.
        register = Register(name="r", writer=1)
        register.write(3, writer=None)
        assert register.value == 3


class TestRegisterFile:
    def test_lazy_creation_with_default_none(self):
        registers = RegisterFile()
        assert registers.read("unknown") is None
        registers.write("unknown", 7)
        assert registers.read("unknown") == 7

    def test_declare_sets_initial_value(self):
        registers = RegisterFile()
        registers.declare(("Heartbeat", 1), initial=0, writer=1)
        assert registers.read(("Heartbeat", 1)) == 0

    def test_declare_array(self):
        registers = RegisterFile()
        registers.declare_array("Heartbeat", (1, 2, 3), initial=0, owner_from_index=True)
        assert registers.read(("Heartbeat", 2)) == 0
        with pytest.raises(RegisterError):
            registers.write(("Heartbeat", 2), 5, writer=3)

    def test_declare_array_owner_from_index_rejects_non_int_indices(self):
        # A non-integer index cannot name an owning process: minting an
        # unowned register here would silently drop single-writer checks.
        registers = RegisterFile()
        with pytest.raises(ConfigurationError, match="integer process-id"):
            registers.declare_array("Counter", (1, ("A", 2)), initial=0, owner_from_index=True)
        with pytest.raises(ConfigurationError, match="integer process-id"):
            registers.declare_array("Flag", (True,), initial=0, owner_from_index=True)
        # Without owner_from_index the same indices are fine (and unowned).
        registers.declare_array("Counter", (1, ("A", 2)), initial=0)
        registers.write(("Counter", ("A", 2)), 5, writer=3)
        assert registers.read(("Counter", ("A", 2))) == 5

    def test_redeclare_resets_value(self):
        registers = RegisterFile()
        registers.declare("r", initial=1)
        registers.write("r", 9)
        registers.declare("r", initial=1)
        assert registers.read("r") == 1

    def test_peek_does_not_count(self):
        registers = RegisterFile()
        registers.declare("r", initial=5)
        assert registers.peek("r") == 5
        assert registers.total_reads() == 0

    def test_operation_counts(self):
        registers = RegisterFile()
        registers.write("a", 1)
        registers.write("b", 2)
        registers.read("a")
        assert registers.total_writes() == 2
        assert registers.total_reads() == 1

    def test_names_and_exists(self):
        registers = RegisterFile()
        registers.declare("a", 0)
        registers.read("b")
        assert registers.exists("a")
        assert registers.exists("b")
        assert not registers.exists("c")
        assert set(registers.names()) == {"a", "b"}

    def test_snapshot_values(self):
        registers = RegisterFile()
        registers.write("x", 1)
        registers.write("y", 2)
        assert registers.snapshot_values() == {"x": 1, "y": 2}


class TestResolveOnUndeclaredNames:
    def test_resolve_never_declared_name_creates_unowned_none_register(self):
        registers = RegisterFile()
        register = registers.resolve(("ghost", 1))
        assert register.value is None
        assert register.writer is None
        assert register.read_count == 0 and register.write_count == 0
        assert registers.exists(("ghost", 1))

    def test_resolve_after_declare_carries_declared_default_and_owner(self):
        registers = RegisterFile()
        registers.declare(("Heartbeat", 3), initial=7, writer=3)
        register = registers.resolve(("Heartbeat", 3))
        assert register.value == 7
        assert register.writer == 3
        with pytest.raises(RegisterError, match="owned by process 3"):
            register.write(1, writer=2)

    def test_resolve_slot_miss_carries_declared_default_and_owner(self):
        # resolve_slot is the hot loops' miss path: a slot interned there must
        # be indistinguishable from one created via resolve().
        registers = RegisterFile()
        registers.declare(("Counter", (1, 2), 1), initial=0, writer=1)
        arena = registers.arena_view()
        slot = registers.resolve_slot(("Counter", (1, 2), 1))
        assert arena.values[slot] == 0
        assert arena.writers[slot] == 1

    def test_arena_slots_agree_with_fast_ops_lookups(self):
        registers = RegisterFile()
        registers.declare("declared", initial=5, writer=2)
        registers.resolve("lazy")
        mapping, resolve = registers.fast_ops()
        arena = registers.arena_view()
        for name in ("declared", "lazy"):
            register = mapping.get(name) or resolve(name)
            slot = arena.slots[name]
            assert register.slot == slot
            assert register.value == arena.values[slot]
            assert register.writer == arena.writers[slot]
            # Mutation through either view is visible through the other.
            register.write(("via", name), writer=register.writer)
            assert arena.values[slot] == ("via", name)
            assert arena.write_counts[slot] == register.write_count == 1


class TestArenaCoherence:
    def test_register_is_a_live_window_onto_the_arena(self):
        registers = RegisterFile()
        register = registers.resolve("r")
        arena = registers.arena_view()
        slot = arena.slots["r"]
        arena.values[slot] = 42
        arena.read_counts[slot] = 3
        assert register.value == 42 and register.read_count == 3
        register.value = 43
        register.write_count = 9
        assert arena.values[slot] == 43 and arena.write_counts[slot] == 9
        assert registers.total_writes() == 9

    def test_redeclare_reuses_the_slot_and_resets_in_place(self):
        registers = RegisterFile()
        registers.declare("r", initial=1)
        registers.write("r", 9)
        arena = registers.arena_view()
        slot = arena.slots["r"]
        old_register = registers.resolve("r")
        registers.declare("r", initial=1)
        assert arena.slots["r"] == slot  # slot survives, bound ops stay valid
        assert registers.read("r") == 1
        assert registers.total_writes() == 0  # counters reset with the value
        assert old_register.value == 1  # the old window sees the reset state

    def test_standalone_register_owns_a_private_arena(self):
        register = Register(name="solo", value=1, writer=2)
        assert isinstance(register.arena, RegisterArena)
        assert register.arena.names == ["solo"]
        register.write(5, writer=2)
        assert register.value == 5 and register.write_count == 1

    def test_arena_len_and_names_track_interning_order(self):
        registers = RegisterFile()
        registers.declare("a", 0)
        registers.read("b")
        arena = registers.arena_view()
        assert len(arena) == 2
        assert registers.names() == ("a", "b")


class TestFastOpsReadOnlyView:
    def test_mapping_is_a_live_read_only_view(self):
        registers = RegisterFile()
        registers.declare("a", 0)
        mapping, resolve = registers.fast_ops()
        assert isinstance(mapping, MappingProxyType)
        assert "a" in mapping
        resolve("b")  # lazily created registers appear in the live view
        assert "b" in mapping

    def test_mapping_rejects_mutation(self):
        registers = RegisterFile()
        registers.declare("a", 0)
        mapping, _ = registers.fast_ops()
        with pytest.raises(TypeError):
            mapping["rogue"] = Register(name="rogue")
        with pytest.raises(TypeError):
            del mapping["a"]
        with pytest.raises(AttributeError):
            mapping.clear()
