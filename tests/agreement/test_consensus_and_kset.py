"""Tests for leader-gated consensus, the k-set protocol, the trivial algorithm, and the runner."""

import random

import pytest

from repro.agreement.consensus import LeaderGatedConsensus
from repro.agreement.kset import DECISION
from repro.agreement.problem import distinct_inputs
from repro.agreement.runner import solve_agreement
from repro.agreement.trivial import TrivialKSetAgreementAutomaton
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.runtime.automaton import FunctionAutomaton
from repro.runtime.crash import CrashPattern
from repro.runtime.simulator import Simulator
from repro.schedules.random_schedule import RandomGenerator
from repro.schedules.set_timely import SetTimelyGenerator
from repro.types import AgreementInstance


def run_consensus(n, proposals, schedule_steps, leader):
    """Run one leader-gated consensus instance with a fixed leader."""
    consensus = LeaderGatedConsensus(name="cons", n=n)
    decisions = {}

    def factory(pid):
        def program(automaton, ctx):
            decision = yield from consensus.propose(automaton.pid, proposals[automaton.pid], lambda: leader)
            decisions[automaton.pid] = decision
            automaton.publish("decision", decision)
        return program

    automata = {pid: FunctionAutomaton(pid=pid, n=n, function=factory(pid)) for pid in range(1, n + 1)}
    simulator = Simulator(n=n, automata=automata)
    simulator.run(Schedule(steps=tuple(schedule_steps), n=n))
    return decisions


class TestLeaderGatedConsensus:
    def test_stable_leader_decides_and_everyone_adopts(self):
        decisions = run_consensus(3, {1: "a", 2: "b", 3: "c"}, [1, 2, 3] * 100, leader=2)
        assert decisions == {1: "b", 2: "b", 3: "b"}

    def test_validity(self):
        decisions = run_consensus(3, {1: "a", 2: "b", 3: "c"}, [3, 2, 1] * 100, leader=1)
        assert set(decisions.values()) == {"a"}

    def test_agreement_under_random_schedules_with_changing_leaders(self):
        """Safety must hold even when every process believes it is the leader."""
        for seed in range(8):
            rng = random.Random(seed)
            consensus = LeaderGatedConsensus(name=("chaos", seed), n=3)
            decisions = {}

            def factory(pid):
                def program(automaton, ctx):
                    decision = yield from consensus.propose(
                        automaton.pid, f"v{automaton.pid}", lambda: automaton.pid
                    )
                    decisions[automaton.pid] = decision
                return program

            automata = {pid: FunctionAutomaton(pid=pid, n=3, function=factory(pid)) for pid in (1, 2, 3)}
            simulator = Simulator(n=3, automata=automata)
            steps = tuple(rng.randint(1, 3) for _ in range(6000))
            simulator.run(Schedule(steps=steps, n=3))
            assert len(set(decisions.values())) <= 1

    def test_non_leader_learns_from_decision_register(self):
        decisions = run_consensus(2, {1: "x", 2: "y"}, [1] * 60 + [2] * 30, leader=1)
        assert decisions[1] == "x"
        assert decisions[2] == "x"


class TestTrivialAlgorithm:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            TrivialKSetAgreementAutomaton(pid=1, n=4, t=2, k=2, input_value=0)

    def test_decides_at_most_t_plus_one_values(self):
        problem = AgreementInstance(t=1, k=3, n=4)
        generator = RandomGenerator(4, seed=77)
        report = solve_agreement(problem, distinct_inputs(4), generator, max_steps=5_000)
        assert report.verdict.satisfied
        assert len(report.verdict.distinct_decisions) <= 2  # at most t+1 = 2 publishers

    def test_tolerates_publisher_crashes(self):
        problem = AgreementInstance(t=2, k=3, n=4)
        crash = CrashPattern.initial_crashes(4, {1, 2})
        generator = RandomGenerator(4, seed=78, crash_pattern=crash)
        report = solve_agreement(problem, distinct_inputs(4), generator, max_steps=10_000)
        assert report.verdict.satisfied
        assert report.decisions[3] == report.inputs[3] or report.decisions[3] in report.inputs.values()


class TestSolveAgreementEndToEnd:
    def test_detector_based_protocol_terminates_and_is_safe(self):
        problem = AgreementInstance(t=2, k=2, n=4)
        generator = SetTimelyGenerator(n=4, p_set={1, 2}, q_set={1, 2, 3}, bound=3, seed=7)
        report = solve_agreement(problem, distinct_inputs(4), generator, max_steps=400_000)
        assert report.verdict.satisfied
        assert report.all_correct_decided
        assert len(report.verdict.distinct_decisions) <= 2
        assert report.detector_verdict is not None and report.detector_verdict.satisfied
        assert report.max_decision_step() is not None

    def test_with_crashes_outside_p(self):
        problem = AgreementInstance(t=2, k=2, n=5)
        crash = CrashPattern.initial_crashes(5, {4, 5})
        generator = SetTimelyGenerator(
            n=5, p_set={1, 2}, q_set={1, 2, 3}, bound=3, seed=9, crash_pattern=crash
        )
        report = solve_agreement(problem, distinct_inputs(5), generator, max_steps=600_000)
        assert report.verdict.satisfied
        assert report.correct == frozenset({1, 2, 3})

    def test_safety_holds_on_arbitrary_schedules(self):
        """Even without the synchrony needed for termination, decisions stay safe."""
        problem = AgreementInstance(t=2, k=2, n=3)
        for seed in range(4):
            generator = RandomGenerator(3, seed=seed)
            report = solve_agreement(problem, distinct_inputs(3), generator, max_steps=30_000)
            assert report.verdict.safe
            assert len(report.verdict.distinct_decisions) <= 2

    def test_plain_schedule_requires_correct_set(self):
        problem = AgreementInstance(t=2, k=2, n=3)
        schedule = Schedule.round_robin(3, rounds=10)
        with pytest.raises(ConfigurationError):
            solve_agreement(problem, distinct_inputs(3), schedule, max_steps=100)
        report = solve_agreement(
            problem, distinct_inputs(3), schedule, max_steps=100, correct={1, 2, 3}
        )
        assert report.verdict.safe

    def test_missing_inputs_rejected(self):
        problem = AgreementInstance(t=2, k=2, n=3)
        generator = RandomGenerator(3, seed=1)
        with pytest.raises(ConfigurationError):
            solve_agreement(problem, {1: 0}, generator, max_steps=100)
