"""Tests for the agreement problem checker and the adopt-commit object."""

import random

import pytest

from repro.agreement.adopt_commit import AdoptCommit, Grade
from repro.agreement.problem import binary_inputs, check_agreement, distinct_inputs
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError, ProtocolViolationError
from repro.runtime.automaton import FunctionAutomaton
from repro.runtime.simulator import Simulator
from repro.types import AgreementInstance


class TestAgreementInstance:
    def test_validation(self):
        with pytest.raises(ValueError):
            AgreementInstance(t=0, k=1, n=3)
        with pytest.raises(ValueError):
            AgreementInstance(t=3, k=1, n=3)
        with pytest.raises(ValueError):
            AgreementInstance(t=2, k=4, n=3)

    def test_describe(self):
        assert "consensus" in AgreementInstance(t=2, k=1, n=3).describe()
        assert "wait-free" in AgreementInstance(t=2, k=1, n=3).describe()
        assert "set agreement" in AgreementInstance(t=1, k=3, n=4).describe()


class TestCheckAgreement:
    def setup_method(self):
        self.problem = AgreementInstance(t=1, k=2, n=3)
        self.inputs = {1: "a", 2: "b", 3: "c"}

    def test_satisfied_run(self):
        verdict = check_agreement(self.problem, self.inputs, {1: "a", 2: "a", 3: "b"}, correct={1, 2, 3})
        assert verdict.valid and verdict.agreement and verdict.terminated and verdict.satisfied

    def test_validity_violation(self):
        verdict = check_agreement(self.problem, self.inputs, {1: "zzz"}, correct={1, 2, 3})
        assert not verdict.valid
        with pytest.raises(ProtocolViolationError):
            check_agreement(self.problem, self.inputs, {1: "zzz"}, correct={1, 2, 3}, strict=True)

    def test_agreement_violation(self):
        decisions = {1: "a", 2: "b", 3: "c"}
        verdict = check_agreement(self.problem, self.inputs, decisions, correct={1, 2, 3})
        assert not verdict.agreement
        with pytest.raises(ProtocolViolationError):
            check_agreement(self.problem, self.inputs, decisions, correct={1, 2, 3}, strict=True)

    def test_termination_reporting(self):
        verdict = check_agreement(self.problem, self.inputs, {1: "a"}, correct={1, 2})
        assert not verdict.terminated
        assert verdict.undecided_correct == frozenset({2})
        assert verdict.applicable  # one faulty process <= t

    def test_termination_not_applicable_with_too_many_crashes(self):
        verdict = check_agreement(self.problem, self.inputs, {}, correct={1})
        assert not verdict.applicable
        assert verdict.satisfied  # safety holds vacuously, termination excused

    def test_missing_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            check_agreement(self.problem, {1: "a"}, {}, correct={1, 2, 3})

    def test_input_helpers(self):
        assert binary_inputs(3, {2}) == {1: 0, 2: 1, 3: 0}
        assert distinct_inputs(3) == {1: 100, 2: 200, 3: 300}


def run_adopt_commit(n, proposals, schedule_steps, name="ac"):
    """Drive one adopt-commit object with the given per-process proposals."""
    ac = AdoptCommit(name=name, n=n)
    results = {}

    def factory(pid):
        def program(automaton, ctx):
            result = yield from ac.propose(automaton.pid, proposals[automaton.pid])
            results[automaton.pid] = result
            automaton.publish("result", result)
        return program

    automata = {pid: FunctionAutomaton(pid=pid, n=n, function=factory(pid)) for pid in range(1, n + 1)}
    simulator = Simulator(n=n, automata=automata)
    simulator.run(Schedule(steps=tuple(schedule_steps), n=n))
    return results


class TestAdoptCommit:
    def test_solo_proposer_commits(self):
        results = run_adopt_commit(3, {1: "x", 2: "y", 3: "z"}, [1] * 20)
        assert results[1].grade is Grade.COMMIT
        assert results[1].value == "x"

    def test_unanimous_proposals_commit(self):
        results = run_adopt_commit(3, {1: "v", 2: "v", 3: "v"}, [1, 2, 3] * 20)
        assert len(results) == 3
        for result in results.values():
            assert result.grade is Grade.COMMIT
            assert result.value == "v"

    def test_validity(self):
        results = run_adopt_commit(3, {1: "a", 2: "b", 3: "c"}, [3, 1, 2] * 20)
        for result in results.values():
            assert result.value in {"a", "b", "c"}

    def test_commit_agreement_under_random_schedules(self):
        """If any process commits v, every returned value is v (agreement)."""
        for seed in range(12):
            rng = random.Random(seed)
            steps = [rng.randint(1, 3) for _ in range(200)]
            results = run_adopt_commit(3, {1: "a", 2: "b", 3: "b"}, steps, name=("ac", seed))
            committed = [r.value for r in results.values() if r.grade is Grade.COMMIT]
            if committed:
                value = committed[0]
                for result in results.values():
                    assert result.value == value

    def test_all_complete_in_bounded_steps(self):
        """Wait-freedom: 2n + 2 own-steps suffice regardless of the interleaving."""
        n = 3
        per_process = 2 * n + 3
        steps = []
        for pid in (1, 2, 3):
            steps.extend([pid] * per_process)
        results = run_adopt_commit(n, {1: 1, 2: 2, 3: 3}, steps)
        assert set(results) == {1, 2, 3}
