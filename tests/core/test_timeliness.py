"""Unit tests for set timeliness analysis (repro.core.timeliness)."""

import pytest

from repro.core.schedule import Schedule
from repro.core.timeliness import (
    analyze_timeliness,
    find_violating_window,
    is_timely,
    minimal_timeliness_bound,
    p_free_segments,
    process_timely,
)
from repro.errors import VerificationError


def schedule(*steps, n=4):
    return Schedule(steps=tuple(steps), n=n)


class TestPFreeSegments:
    def test_segments_and_q_counts(self):
        s = schedule(1, 2, 2, 3, 1, 2, n=3)
        segments = p_free_segments(s, {1}, {2})
        assert [(seg.start, seg.end, seg.q_steps) for seg in segments] == [(1, 4, 2), (5, 6, 1)]

    def test_whole_schedule_p_free(self):
        s = schedule(2, 2, 3, n=3)
        segments = p_free_segments(s, {1}, {2})
        assert len(segments) == 1
        assert segments[0].q_steps == 2
        assert segments[0].length == 3

    def test_no_p_free_segment(self):
        s = schedule(1, 1, 1, n=3)
        assert p_free_segments(s, {1}, {2}) == []


class TestMinimalBound:
    def test_alternating_schedule_bound_two(self):
        s = Schedule(steps=(1, 2) * 10, n=2)
        assert minimal_timeliness_bound(s, {1}, {2}) == 2

    def test_p_never_steps_gives_saturated_bound(self):
        s = schedule(2, 2, 2, n=3)
        witness = analyze_timeliness(s, {1}, {2})
        assert witness.minimal_bound == 4
        assert witness.saturated
        assert witness.evidence_ratio() == 1.0

    def test_q_subset_of_p_gives_bound_one(self):
        s = schedule(1, 2, 1, 2, n=3)
        assert minimal_timeliness_bound(s, {1, 2}, {2}) == 1

    def test_empty_schedule_bound_one(self):
        assert minimal_timeliness_bound(Schedule.empty(3), {1}, {2}) == 1

    def test_bound_matches_worst_gap(self):
        # Gaps of q-steps between p-steps: 3, then 1.
        s = schedule(1, 2, 2, 2, 1, 2, 1, n=3)
        witness = analyze_timeliness(s, {1}, {2})
        assert witness.minimal_bound == 4
        assert witness.worst_segment is not None
        assert witness.worst_segment.q_steps == 3

    def test_empty_sets_rejected(self):
        s = schedule(1, 2, n=3)
        with pytest.raises(VerificationError):
            analyze_timeliness(s, set(), {2})
        with pytest.raises(VerificationError):
            analyze_timeliness(s, {1}, set())


class TestIsTimely:
    def test_given_bound_accepted_and_rejected(self):
        s = schedule(1, 2, 2, 2, 1, n=3)
        assert is_timely(s, {1}, {2}, bound=4)
        assert not is_timely(s, {1}, {2}, bound=3)

    def test_bound_below_one_rejected(self):
        with pytest.raises(VerificationError):
            is_timely(schedule(1, n=2), {1}, {2}, bound=0)

    def test_process_timely_is_singleton_case(self):
        s = Schedule(steps=(1, 2) * 5, n=2)
        assert process_timely(s, 1, 2, bound=2)
        assert not process_timely(s, 2, 1, bound=1)


class TestViolatingWindow:
    def test_window_found_for_too_small_bound(self):
        s = schedule(1, 2, 2, 2, 1, n=3)
        window = find_violating_window(s, {1}, {2}, bound=3)
        assert window == (1, 4)

    def test_no_window_for_valid_bound(self):
        s = schedule(1, 2, 2, 2, 1, n=3)
        assert find_violating_window(s, {1}, {2}, bound=4) is None

    def test_window_contents_have_no_p_step(self):
        s = schedule(3, 2, 2, 3, 2, 1, 2, 2, n=3)
        window = find_violating_window(s, {1}, {2}, bound=3)
        assert window is not None
        start, end = window
        assert 1 not in s.steps[start:end]
        assert s.steps[start:end].count(2) >= 3


class TestWitnessSemantics:
    def test_is_timely_with_bound_consistency(self):
        s = schedule(1, 2, 2, 1, 2, 2, 2, 1, n=3)
        witness = analyze_timeliness(s, {1}, {2})
        assert witness.is_timely_with_bound(witness.minimal_bound)
        assert not witness.is_timely_with_bound(witness.minimal_bound - 1)

    def test_union_of_p_never_increases_bound(self):
        s = schedule(1, 2, 3, 2, 2, 1, 3, 2, n=3)
        bound_single = analyze_timeliness(s, {1}, {2}).minimal_bound
        bound_union = analyze_timeliness(s, {1, 3}, {2}).minimal_bound
        assert bound_union <= bound_single

    def test_shrinking_q_never_increases_bound(self):
        s = schedule(1, 2, 3, 2, 2, 1, 3, 2, n=3)
        bound_full = analyze_timeliness(s, {1}, {2, 3}).minimal_bound
        bound_sub = analyze_timeliness(s, {1}, {2}).minimal_bound
        assert bound_sub <= bound_full
