"""Unit tests for systems S^i_{j,n} (repro.core.systems)."""

import pytest

from repro.core.schedule import Schedule
from repro.core.systems import (
    AsynchronousSystem,
    SetTimelinessSystem,
    asynchronous_system,
    partially_synchronous_system,
    system_family,
)
from repro.errors import ConfigurationError
from repro.types import SystemCoordinates


class TestConstruction:
    def test_valid_coordinates(self):
        system = SetTimelinessSystem(i=2, j=3, n=5)
        assert system.i == 2 and system.j == 3 and system.n == 5
        assert system.name == "S^2_{3,5}"
        assert system.coordinates() == SystemCoordinates(i=2, j=3, n=5)

    def test_invalid_coordinates_rejected(self):
        with pytest.raises(ConfigurationError):
            SetTimelinessSystem(i=3, j=2, n=5)
        with pytest.raises(ConfigurationError):
            SetTimelinessSystem(i=0, j=2, n=5)
        with pytest.raises(ConfigurationError):
            SetTimelinessSystem(i=2, j=6, n=5)

    def test_asynchronous_system(self):
        system = asynchronous_system(4)
        assert system.n == 4
        assert system.is_asynchronous()
        assert system.admits(Schedule(steps=(1, 2, 3, 4), n=4))

    def test_system_family_size(self):
        family = system_family(4)
        assert len(family) == sum(range(1, 5))  # pairs with 1 <= i <= j <= 4

    def test_factory_helpers(self):
        assert isinstance(partially_synchronous_system(1, 2, 3), SetTimelinessSystem)
        with pytest.raises(ConfigurationError):
            partially_synchronous_system(2, 1, 3)


class TestContainment:
    def test_observation_4_containment(self):
        outer = SetTimelinessSystem(i=2, j=3, n=5)
        inner = SetTimelinessSystem(i=1, j=4, n=5)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_containment_requires_same_n(self):
        assert not SetTimelinessSystem(i=1, j=2, n=4).contains(SetTimelinessSystem(i=1, j=2, n=5))

    def test_asynchronous_contains_everything(self):
        asynchronous = AsynchronousSystem(5)
        for system in system_family(5):
            assert asynchronous.contains(system)

    def test_observation_5_diagonal_is_asynchronous(self):
        diagonal = SetTimelinessSystem(i=3, j=3, n=5)
        assert diagonal.is_asynchronous()
        assert diagonal.contains(AsynchronousSystem(5))
        assert AsynchronousSystem(5).contains(diagonal)

    def test_equality_and_hash_by_coordinates(self):
        a = SetTimelinessSystem(i=2, j=3, n=5)
        b = SetTimelinessSystem(i=2, j=3, n=5)
        assert a == b
        assert hash(a) == hash(b)


class TestWitnesses:
    def test_best_witness_finds_alternating_pair(self):
        schedule = Schedule(steps=(1, 2) * 20 + (3,) * 5, n=3)
        system = SetTimelinessSystem(i=1, j=1, n=3)
        witness = system.best_witness(schedule)
        assert witness.bound <= 2

    def test_admits_with_bound(self):
        # Process 3 alternates with {1, 2}, so some singleton is timely w.r.t.
        # some pair with bound 2 and the schedule is good evidence for S^1_{2,3}.
        schedule = Schedule(steps=(1, 3, 2, 3) * 10, n=3)
        system = SetTimelinessSystem(i=1, j=2, n=3)
        assert system.admits_with_bound(schedule, bound=2)

    def test_witnesses_with_bound_lists_all(self):
        schedule = Schedule(steps=(1, 2, 3) * 10, n=3)
        system = SetTimelinessSystem(i=1, j=1, n=3)
        witnesses = system.witnesses_with_bound(schedule, bound=3)
        # In a round-robin schedule every singleton is timely w.r.t. every
        # singleton (including itself), so all 3 x 3 pairs qualify.
        assert len(witnesses) == 9

    def test_admits_checks_universe(self):
        system = SetTimelinessSystem(i=1, j=2, n=3)
        with pytest.raises(ConfigurationError):
            system.admits(Schedule(steps=(1,), n=4))

    def test_candidate_pairs_count(self):
        system = SetTimelinessSystem(i=2, j=3, n=4)
        pairs = list(system.candidate_pairs())
        assert len(pairs) == 6 * 4  # C(4,2) * C(4,3)
