"""Experiment E1 as tests: the Figure 1 example behaves exactly as the paper says."""

import pytest

from repro.core.timeliness import analyze_timeliness
from repro.errors import ConfigurationError
from repro.schedules.figure1 import Figure1Generator


class TestFigure1Schedule:
    def test_first_blocks_match_the_paper(self):
        generator = Figure1Generator()
        prefix = generator.generate(generator.steps_for_blocks(2))
        # i=1: (p1 q)(p2 q); i=2: (p1 q)^2 (p2 q)^2  with p1=1, p2=2, q=3.
        assert prefix.steps == (1, 3, 2, 3, 1, 3, 1, 3, 2, 3, 2, 3)

    def test_steps_for_blocks(self):
        generator = Figure1Generator()
        assert generator.steps_for_blocks(1) == 4
        assert generator.steps_for_blocks(3) == 4 + 8 + 12

    def test_individual_processes_not_timely(self):
        """The observed bound of {p1} (and {p2}) w.r.t. {q} grows with the prefix."""
        generator = Figure1Generator()
        bounds_p1 = []
        bounds_p2 = []
        for blocks in (2, 4, 8):
            schedule = generator.generate(generator.steps_for_blocks(blocks))
            bounds_p1.append(analyze_timeliness(schedule, {1}, {3}).minimal_bound)
            bounds_p2.append(analyze_timeliness(schedule, {2}, {3}).minimal_bound)
        assert bounds_p1 == sorted(bounds_p1) and bounds_p1[0] < bounds_p1[-1]
        assert bounds_p2 == sorted(bounds_p2) and bounds_p2[0] < bounds_p2[-1]

    def test_set_is_timely_with_bound_two(self):
        """{p1, p2} is timely w.r.t. {q} with bound 2 on every prefix."""
        generator = Figure1Generator()
        for blocks in (1, 3, 6, 12):
            schedule = generator.generate(generator.steps_for_blocks(blocks))
            assert analyze_timeliness(schedule, {1, 2}, {3}).minimal_bound <= 2

    def test_guarantee_matches_claim(self):
        guarantee = Figure1Generator().guarantee()
        assert guarantee.p_set == frozenset({1, 2})
        assert guarantee.q_set == frozenset({3})
        assert guarantee.bound == 2

    def test_all_processes_correct(self):
        generator = Figure1Generator()
        schedule = generator.generate(generator.steps_for_blocks(5))
        assert schedule.participants() == frozenset({1, 2, 3})
        assert generator.faulty == frozenset()


class TestFigure1Validation:
    def test_needs_two_rotating_processes(self):
        with pytest.raises(ConfigurationError):
            Figure1Generator(rotating=(1,))

    def test_reference_must_differ(self):
        with pytest.raises(ConfigurationError):
            Figure1Generator(rotating=(1, 2), reference=2)

    def test_duplicate_rotating_rejected(self):
        with pytest.raises(ConfigurationError):
            Figure1Generator(n=4, rotating=(1, 1), reference=3)

    def test_generalized_rotation(self):
        generator = Figure1Generator(n=4, rotating=(1, 2, 3), reference=4)
        schedule = generator.generate(60)
        assert analyze_timeliness(schedule, {1, 2, 3}, {4}).minimal_bound <= 2
        assert analyze_timeliness(schedule, {1}, {4}).minimal_bound > 2
