"""Unit tests for the schedule formalism (repro.core.schedule)."""

import pytest

from repro.core.schedule import InfiniteSchedule, Schedule, ScheduleBuilder, interleave
from repro.errors import ScheduleError


class TestScheduleConstruction:
    def test_valid_schedule_keeps_steps(self):
        schedule = Schedule(steps=(1, 2, 3, 1), n=3)
        assert len(schedule) == 4
        assert list(schedule) == [1, 2, 3, 1]

    def test_empty_schedule(self):
        schedule = Schedule.empty(4)
        assert len(schedule) == 0
        assert not schedule
        assert schedule.participants() == frozenset()

    def test_step_outside_universe_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule(steps=(1, 5), n=3)

    def test_zero_process_id_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule(steps=(0,), n=3)

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule(steps=(), n=0)

    def test_faulty_hint_validated(self):
        with pytest.raises(ScheduleError):
            Schedule(steps=(1,), n=2, faulty_hint=frozenset({5}))

    def test_from_rounds(self):
        schedule = Schedule.from_rounds([(1, 2), (2, 1)], n=2)
        assert schedule.steps == (1, 2, 2, 1)

    def test_round_robin_constructor(self):
        schedule = Schedule.round_robin(3, rounds=2)
        assert schedule.steps == (1, 2, 3, 1, 2, 3)

    def test_round_robin_custom_order(self):
        schedule = Schedule.round_robin(3, rounds=2, order=(3, 1))
        assert schedule.steps == (3, 1, 3, 1)


class TestScheduleQueries:
    def test_counts(self, small_schedule):
        assert small_schedule.count(3) == 5
        assert small_schedule.counts() == {1: 3, 2: 2, 3: 5}

    def test_count_set(self, small_schedule):
        assert small_schedule.count_set({1, 2}) == 5

    def test_occurrences(self, small_schedule):
        assert small_schedule.occurrences({1}) == [0, 5, 9]

    def test_last_occurrence(self, small_schedule):
        assert small_schedule.last_occurrence(2) == 4
        assert Schedule(steps=(1,), n=3).last_occurrence(2) is None

    def test_participants_and_silent(self):
        schedule = Schedule(steps=(1, 1, 3), n=4)
        assert schedule.participants() == frozenset({1, 3})
        assert schedule.silent_processes() == frozenset({2, 4})

    def test_restricted_to_is_virtual_process_view(self, small_schedule):
        restricted = small_schedule.restricted_to({1, 2})
        assert restricted.steps == (1, 2, 2, 1, 1)

    def test_windows(self):
        schedule = Schedule(steps=(1, 2, 3, 1), n=3)
        assert list(schedule.windows(2)) == [(1, 2), (2, 3), (3, 1)]

    def test_windows_bad_size(self, small_schedule):
        with pytest.raises(ScheduleError):
            list(small_schedule.windows(0))

    def test_declared_correct(self):
        schedule = Schedule(steps=(1, 2), n=3, faulty_hint=frozenset({3}))
        assert schedule.declared_correct() == frozenset({1, 2})
        assert Schedule(steps=(1,), n=3).declared_correct() is None


class TestScheduleStructure:
    def test_concat_matches_paper_notation(self):
        left = Schedule(steps=(1, 2), n=3)
        right = Schedule(steps=(3,), n=3)
        assert (left + right).steps == (1, 2, 3)

    def test_concat_different_universes_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule(steps=(1,), n=2).concat(Schedule(steps=(1,), n=3))

    def test_concat_keeps_suffix_hint(self):
        left = Schedule(steps=(1,), n=3, faulty_hint=frozenset({1}))
        right = Schedule(steps=(2,), n=3, faulty_hint=frozenset({3}))
        assert (left + right).faulty_hint == frozenset({3})

    def test_prefix_suffix_repeat(self, small_schedule):
        assert small_schedule.prefix(3).steps == (1, 2, 3)
        assert small_schedule.suffix(8).steps == (3, 1)
        assert Schedule(steps=(1, 2), n=2).repeat(3).steps == (1, 2, 1, 2, 1, 2)

    def test_prefix_negative_rejected(self, small_schedule):
        with pytest.raises(ScheduleError):
            small_schedule.prefix(-1)

    def test_slicing_returns_schedule(self, small_schedule):
        sliced = small_schedule[2:5]
        assert isinstance(sliced, Schedule)
        assert sliced.steps == (3, 3, 2)
        assert small_schedule[0] == 1

    def test_with_faulty_hint(self, small_schedule):
        hinted = small_schedule.with_faulty_hint({2})
        assert hinted.faulty_hint == frozenset({2})
        assert hinted.steps == small_schedule.steps


class TestScheduleBuilder:
    def test_builds_expected_schedule(self):
        builder = ScheduleBuilder(3)
        builder.append(1).extend([2, 3]).repeat_block([1, 3], 2).declare_faulty({2})
        schedule = builder.build()
        assert schedule.steps == (1, 2, 3, 1, 3, 1, 3)
        assert schedule.faulty_hint == frozenset({2})
        assert len(builder) == 7

    def test_rejects_bad_process(self):
        with pytest.raises(ScheduleError):
            ScheduleBuilder(2).append(3)

    def test_rejects_negative_repeat(self):
        with pytest.raises(ScheduleError):
            ScheduleBuilder(2).repeat_block([1], -1)


class TestInfiniteSchedule:
    def test_prefix_materializes_steps(self):
        infinite = InfiniteSchedule(n=3, step_fn=lambda index: (index % 3) + 1)
        prefix = infinite.prefix(7)
        assert prefix.steps == (1, 2, 3, 1, 2, 3, 1)
        assert prefix.faulty_hint is None or prefix.faulty_hint == frozenset()

    def test_correct_set(self):
        infinite = InfiniteSchedule(n=3, step_fn=lambda index: 1, faulty=frozenset({3}))
        assert infinite.correct() == frozenset({1, 2})

    def test_iter_steps_is_unbounded(self):
        infinite = InfiniteSchedule(n=2, step_fn=lambda index: 1 + (index % 2))
        iterator = infinite.iter_steps()
        assert [next(iterator) for _ in range(4)] == [1, 2, 1, 2]


class TestInterleave:
    def test_round_robin_interleaving(self):
        a = Schedule(steps=(1, 1, 1), n=3)
        b = Schedule(steps=(2, 2), n=3)
        assert interleave([a, b]).steps == (1, 2, 1, 2, 1)

    def test_requires_matching_universes(self):
        with pytest.raises(ScheduleError):
            interleave([Schedule(steps=(1,), n=2), Schedule(steps=(1,), n=3)])

    def test_requires_at_least_one(self):
        with pytest.raises(ScheduleError):
            interleave([])
