"""Tests for the schedule-level reductions used by the Theorem 27 proofs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.reductions import (
    embed_with_fictitious_processes,
    pad_witness_to_resilience,
    verify_fictitious_membership,
)
from repro.core.schedule import Schedule
from repro.core.timeliness import analyze_timeliness
from repro.errors import ConfigurationError
from repro.schedules.random_schedule import RandomGenerator


class TestFictitiousEmbedding:
    def test_embedding_preserves_steps_and_marks_extras_faulty(self):
        original = Schedule(steps=(1, 2, 3, 2, 1), n=3)
        embedding = embed_with_fictitious_processes(original, extra=2)
        assert embedding.n == 5
        assert embedding.schedule.steps == original.steps
        assert embedding.fictitious_processes == frozenset({4, 5})
        assert embedding.schedule.faulty_hint == frozenset({4, 5})
        assert embedding.real_processes == frozenset({1, 2, 3})

    def test_zero_extra_is_identity_universe(self):
        original = Schedule(steps=(1, 2), n=2)
        embedding = embed_with_fictitious_processes(original, extra=0)
        assert embedding.n == 2
        assert embedding.fictitious_processes == frozenset()

    def test_negative_extra_rejected(self):
        with pytest.raises(ConfigurationError):
            embed_with_fictitious_processes(Schedule(steps=(1,), n=1), extra=-1)

    def test_membership_claim_of_theorem_27_2b(self):
        """Every embedded schedule is in S^i_{j, m+(j-i)}: the proof's property."""
        for seed in range(5):
            original = RandomGenerator(3, seed=seed).generate(300)
            embedding = embed_with_fictitious_processes(original, extra=2)
            # i = 2 real processes, j = i + 2 (using both fictitious processes).
            assert verify_fictitious_membership(embedding, i=2, j=4)
            # Any pinned pair of real processes works as the witness.
            assert verify_fictitious_membership(embedding, i=2, j=4, real_witness={1, 3})

    def test_membership_validation(self):
        embedding = embed_with_fictitious_processes(Schedule(steps=(1, 2), n=2), extra=1)
        with pytest.raises(ConfigurationError):
            verify_fictitious_membership(embedding, i=2, j=1)
        with pytest.raises(ConfigurationError):
            verify_fictitious_membership(embedding, i=1, j=3)  # needs 2 fictitious, has 1
        with pytest.raises(ConfigurationError):
            verify_fictitious_membership(embedding, i=1, j=2, real_witness={3})

    @given(st.lists(st.integers(1, 3), min_size=1, max_size=60), st.integers(0, 3))
    def test_membership_holds_for_arbitrary_schedules(self, steps, extra):
        original = Schedule(steps=tuple(steps), n=3)
        embedding = embed_with_fictitious_processes(original, extra=extra)
        i = 1
        j = 1 + extra
        assert verify_fictitious_membership(embedding, i=i, j=j)


class TestWitnessPadding:
    def test_padding_reaches_t_plus_one(self):
        # P = {1,2} timely w.r.t. Q = {3} in this alternating schedule.
        schedule = Schedule(steps=(1, 3, 2, 3) * 25, n=5)
        padded = pad_witness_to_resilience(schedule, {1, 2}, {3}, t=3)
        assert len(padded.q_set) == 4  # t + 1
        assert padded.q_set >= frozenset({3})
        assert padded.p_set >= frozenset({1, 2})
        assert padded.padding and padded.padding.isdisjoint({3})
        assert padded.coordinates.j == 4

    def test_padded_bound_respects_observation_2(self):
        schedule = Schedule(steps=(1, 3, 2, 3) * 25, n=5)
        base_bound = analyze_timeliness(schedule, {1, 2}, {3}).minimal_bound
        padded = pad_witness_to_resilience(schedule, {1, 2}, {3}, t=3)
        # The padding set is timely w.r.t. itself with bound 1, so the union
        # bound is at most base_bound + 1 (Observation 2).
        assert padded.bound <= base_bound + 1

    def test_no_padding_needed_when_j_already_large(self):
        schedule = Schedule(steps=(1, 2, 3, 4) * 10, n=4)
        padded = pad_witness_to_resilience(schedule, {1}, {2, 3, 4}, t=2)
        assert padded.padding == frozenset()
        assert padded.q_set == frozenset({2, 3, 4})

    def test_validation(self):
        schedule = Schedule(steps=(1, 2), n=2)
        with pytest.raises(ConfigurationError):
            pad_witness_to_resilience(schedule, set(), {1}, t=1)
        with pytest.raises(ConfigurationError):
            pad_witness_to_resilience(schedule, {1}, {2}, t=2)  # t > n-1
        with pytest.raises(ConfigurationError):
            pad_witness_to_resilience(schedule, {5}, {1}, t=1)
