"""Tests for the Theorem 27 solvability characterization (repro.core.solvability)."""

import pytest

from repro.core.solvability import (
    Verdict,
    classify,
    is_solvable,
    matching_system,
    matching_system_object,
    separations,
    solvability_grid,
    solvable_frontier,
    verify_separations,
)
from repro.errors import ConfigurationError
from repro.types import AgreementInstance, SystemCoordinates


class TestTheorem27Oracle:
    def test_characterization_formula(self):
        """Exhaustively check the oracle against the paper's iff for small n."""
        for n in range(2, 7):
            for t in range(1, n):
                for k in range(1, t + 1):
                    problem = AgreementInstance(t=t, k=k, n=n)
                    for j in range(1, n + 1):
                        for i in range(1, j + 1):
                            expected = (i <= k) and (j - i >= t + 1 - k)
                            actual = is_solvable(problem, SystemCoordinates(i=i, j=j, n=n))
                            assert actual == expected, (t, k, n, i, j)

    def test_k_greater_than_t_always_solvable(self):
        problem = AgreementInstance(t=1, k=3, n=4)
        for j in range(1, 5):
            for i in range(1, j + 1):
                assert is_solvable(problem, SystemCoordinates(i=i, j=j, n=4))

    def test_asynchronous_system_solves_only_k_greater_than_t(self):
        asynchronous = SystemCoordinates(i=4, j=4, n=4)
        assert not is_solvable(AgreementInstance(t=2, k=2, n=4), asynchronous)
        assert is_solvable(AgreementInstance(t=2, k=3, n=4), asynchronous)

    def test_classify_reports_reason(self):
        result = classify(AgreementInstance(t=2, k=2, n=4), SystemCoordinates(i=3, j=4, n=4))
        assert result.verdict is Verdict.UNSOLVABLE
        assert "i=3" in result.reason

        result = classify(AgreementInstance(t=2, k=2, n=4), SystemCoordinates(i=2, j=3, n=4))
        assert result.verdict is Verdict.SOLVABLE

    def test_mismatched_n_rejected(self):
        with pytest.raises(ConfigurationError):
            classify(AgreementInstance(t=2, k=2, n=4), SystemCoordinates(i=1, j=2, n=5))


class TestMatchingSystem:
    def test_matching_system_is_sk_t_plus_1(self):
        assert matching_system(AgreementInstance(t=3, k=2, n=6)) == SystemCoordinates(i=2, j=4, n=6)

    def test_matching_system_object(self):
        system = matching_system_object(AgreementInstance(t=3, k=2, n=6))
        assert system.i == 2 and system.j == 4 and system.n == 6

    def test_matching_system_for_k_greater_than_t_is_asynchronous(self):
        coords = matching_system(AgreementInstance(t=1, k=3, n=4))
        assert coords.is_asynchronous

    def test_problem_solvable_in_matching_system(self):
        for (t, k, n) in [(2, 2, 4), (3, 1, 5), (4, 3, 6), (1, 1, 3)]:
            problem = AgreementInstance(t=t, k=k, n=n)
            assert is_solvable(problem, matching_system(problem))


class TestSeparations:
    def test_both_arms_present_when_well_formed(self):
        statements = separations(AgreementInstance(t=2, k=2, n=5))
        descriptions = [s.description for s in statements]
        assert len(statements) == 2
        assert any("(3,2,5)" in d for d in descriptions)
        assert any("(2,1,5)" in d for d in descriptions)

    def test_wait_free_problem_has_single_arm(self):
        # t = n-1: no (t+1, k, n) instance exists.
        statements = separations(AgreementInstance(t=3, k=2, n=4))
        assert len(statements) == 1
        assert statements[0].unsolvable_problem.k == 1

    def test_consensus_problem_has_single_arm(self):
        # k = 1: no (t, k-1, n) instance exists.
        statements = separations(AgreementInstance(t=2, k=1, n=5))
        assert len(statements) == 1
        assert statements[0].unsolvable_problem.t == 3

    def test_no_separation_when_k_exceeds_t(self):
        assert separations(AgreementInstance(t=1, k=2, n=4)) == []

    def test_oracle_consistency(self):
        for (t, k, n) in [(2, 2, 4), (3, 2, 5), (2, 1, 4), (4, 4, 5), (3, 3, 4)]:
            assert verify_separations(AgreementInstance(t=t, k=k, n=n))


class TestGridAndFrontier:
    def test_grid_covers_all_cells(self):
        problem = AgreementInstance(t=2, k=2, n=4)
        grid = solvability_grid(problem)
        assert len(grid) == sum(range(1, 5))

    def test_frontier_contains_matching_system(self):
        problem = AgreementInstance(t=3, k=2, n=6)
        frontier = solvable_frontier(problem)
        assert matching_system(problem) in frontier

    def test_frontier_is_the_diagonal_of_theorem_27(self):
        problem = AgreementInstance(t=3, k=2, n=6)
        frontier = set(solvable_frontier(problem))
        expected = {
            SystemCoordinates(i=i, j=i + problem.t + 1 - problem.k, n=6)
            for i in range(1, problem.k + 1)
            if i + problem.t + 1 - problem.k <= 6
        }
        assert frontier == expected

    def test_frontier_cells_are_solvable_and_undominated(self):
        problem = AgreementInstance(t=2, k=2, n=5)
        frontier = solvable_frontier(problem)
        grid = solvability_grid(problem)
        for coords in frontier:
            assert grid[(coords.i, coords.j)].solvable
