"""Property-based checks of Observations 4-7 (2 and 3 live with the timeliness tests)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.observations import observation_4, observation_5, observation_6, observation_7
from repro.core.schedule import Schedule
from repro.types import AgreementInstance, SystemCoordinates

N_MAX = 6


def problems():
    return st.integers(3, N_MAX).flatmap(
        lambda n: st.tuples(
            st.integers(1, n - 1),
            st.integers(1, n),
            st.just(n),
        )
    ).map(lambda tkn: AgreementInstance(t=tkn[0], k=tkn[1], n=tkn[2]))


def coordinates(n: int):
    return st.integers(1, n).flatmap(
        lambda j: st.tuples(st.integers(1, j), st.just(j))
    ).map(lambda ij: SystemCoordinates(i=ij[0], j=ij[1], n=n))


@given(
    st.integers(2, N_MAX).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.integers(1, n),
            st.integers(1, n),
            st.integers(1, n),
            st.integers(1, n),
        )
    )
)
def test_observation_4(params):
    n, i, j, i_prime, j_prime = params
    assert observation_4(i, j, i_prime, j_prime, n)


@given(
    st.integers(2, N_MAX),
    st.integers(1, N_MAX),
    st.lists(st.integers(1, 2), max_size=20),
)
def test_observation_5(n, i, raw_steps):
    steps = tuple(min(step, n) for step in raw_steps)
    schedule = Schedule(steps=steps, n=n)
    assert observation_5(i, n, schedule)


@given(problems())
def test_observation_6(problem):
    n = problem.n
    for outer_j in range(1, n + 1):
        for outer_i in range(1, outer_j + 1):
            outer = SystemCoordinates(i=outer_i, j=outer_j, n=n)
            for inner_j in range(outer_j, n + 1):
                for inner_i in range(1, min(outer_i, inner_j) + 1):
                    inner = SystemCoordinates(i=inner_i, j=inner_j, n=n)
                    assert observation_6(problem, outer, inner)


@given(problems(), st.data())
def test_observation_7(problem, data):
    n = problem.n
    j = data.draw(st.integers(1, n))
    i = data.draw(st.integers(1, j))
    j_prime = data.draw(st.integers(1, n))
    i_prime = data.draw(st.integers(1, j_prime))
    assert observation_7(problem, i, j, i_prime, j_prime)
