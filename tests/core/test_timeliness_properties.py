"""Property-based tests for set timeliness (hypothesis).

The central invariant: the analytically computed minimal bound must coincide
with the brute-force definition ("every window with i Q-steps contains a
P-step") on arbitrary schedules and arbitrary non-empty sets.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from hypothesis import given
from hypothesis import strategies as st

from repro.core.schedule import Schedule
from repro.core.timeliness import analyze_timeliness, is_timely
from repro.core.observations import observation_2, observation_3


N = 4


def schedules(min_size=0, max_size=60):
    return st.lists(st.integers(1, N), min_size=min_size, max_size=max_size).map(
        lambda steps: Schedule(steps=tuple(steps), n=N)
    )


def nonempty_subsets():
    return st.sets(st.integers(1, N), min_size=1, max_size=N).map(frozenset)


def brute_force_holds(schedule: Schedule, p: FrozenSet[int], q: FrozenSet[int], bound: int) -> bool:
    """Literal Definition 1: every window with `bound` Q-steps has a P-step."""
    steps = schedule.steps
    for start in range(len(steps)):
        q_seen = 0
        p_seen = False
        for end in range(start, len(steps)):
            if steps[end] in p:
                p_seen = True
            if steps[end] in q:
                q_seen += 1
            if q_seen >= bound:
                if not p_seen:
                    return False
                break
    return True


@given(schedules(), nonempty_subsets(), nonempty_subsets())
def test_minimal_bound_matches_brute_force(schedule, p_set, q_set):
    bound = analyze_timeliness(schedule, p_set, q_set).minimal_bound
    assert brute_force_holds(schedule, p_set, q_set, bound)
    if bound > 1:
        assert not brute_force_holds(schedule, p_set, q_set, bound - 1)


@given(schedules(), nonempty_subsets(), nonempty_subsets())
def test_bound_never_exceeds_saturation(schedule, p_set, q_set):
    witness = analyze_timeliness(schedule, p_set, q_set)
    assert 1 <= witness.minimal_bound <= witness.total_q_steps + 1


@given(schedules(), nonempty_subsets(), nonempty_subsets(), nonempty_subsets(), nonempty_subsets())
def test_observation_2_union(schedule, p1, q1, p2, q2):
    assert observation_2(schedule, p1, q1, p2, q2)


@given(schedules(), nonempty_subsets(), nonempty_subsets(), st.sets(st.integers(1, N), max_size=N))
def test_observation_3_monotonicity(schedule, p_set, q_set, extra):
    p_superset = frozenset(p_set) | frozenset(extra)
    q_subset = frozenset(q_set) - frozenset(extra)
    if not q_subset:
        q_subset = frozenset({min(q_set)})
        if not q_subset <= frozenset(q_set):
            return
    assert observation_3(schedule, p_set, q_set, p_superset, q_subset)


@given(schedules(), nonempty_subsets(), nonempty_subsets(), st.integers(1, 10))
def test_is_timely_monotone_in_bound(schedule, p_set, q_set, bound):
    if is_timely(schedule, p_set, q_set, bound):
        assert is_timely(schedule, p_set, q_set, bound + 1)


@given(schedules(max_size=40), schedules(max_size=40), nonempty_subsets(), nonempty_subsets())
def test_concatenation_bound_bounded_by_parts(left, right, p_set, q_set):
    """The bound of S·S' is at most (bound of S) + (bound of S') when both parts
    end/start cleanly — more loosely, it never exceeds their sum plus one window
    that straddles the seam, which is itself bounded by the two bounds' sum."""
    combined = left + right
    bound_left = analyze_timeliness(left, p_set, q_set).minimal_bound
    bound_right = analyze_timeliness(right, p_set, q_set).minimal_bound
    bound_combined = analyze_timeliness(combined, p_set, q_set).minimal_bound
    assert bound_combined <= bound_left + bound_right
