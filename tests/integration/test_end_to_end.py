"""Integration tests: the paper's headline results exercised through the public API."""

from repro import (
    AgreementInstance,
    CarrierRotationAdversary,
    SetTimelyGenerator,
    distinct_inputs,
    is_solvable,
    matching_system,
    solvability_grid,
    solve_agreement,
)
from repro.analysis.metrics import run_detector_experiment
from repro.core.solvability import separations, verify_separations
from repro.runtime.crash import CrashPattern
from repro.types import SystemCoordinates


class TestTheorem24EndToEnd:
    """(t, k, n)-agreement is solvable in S^k_{t+1,n}: run it and check the spec."""

    def test_agreement_in_matching_system(self):
        for (t, k, n, crashes) in [
            (2, 2, 4, frozenset()),
            (2, 1, 3, frozenset()),
            (3, 2, 5, frozenset({5})),
        ]:
            problem = AgreementInstance(t=t, k=k, n=n)
            system = matching_system(problem)
            assert is_solvable(problem, system)
            crash = CrashPattern.initial_crashes(n, crashes) if crashes else CrashPattern.none(n)
            correct_prefix = [p for p in range(1, n + 1) if p not in crashes][:k]
            generator = SetTimelyGenerator(
                n=n,
                p_set=frozenset(correct_prefix),
                q_set=frozenset(range(1, t + 2)),
                bound=3,
                seed=101,
                crash_pattern=crash,
            )
            report = solve_agreement(problem, distinct_inputs(n), generator, max_steps=800_000)
            assert report.verdict.satisfied, (t, k, n)
            assert len(report.verdict.distinct_decisions) <= k


class TestTheorem26SeparationEndToEnd:
    """One schedule family separates degree k from degree k-1 machinery."""

    def test_same_schedule_separates_detector_degrees(self):
        k = 2
        n, t = k + 1, k
        horizon = 60_000
        adversary = CarrierRotationAdversary(n=n, carriers=frozenset(range(1, k + 1)))

        report_k = run_detector_experiment(adversary, t=t, k=k, horizon=horizon)
        report_k_minus_1 = run_detector_experiment(adversary, t=t, k=k - 1, horizon=horizon)

        # Degree k: stabilizes early and stays put.
        assert report_k.stabilized_early
        assert report_k.winner_contains_correct

        # Degree k-1: the winner keeps changing essentially until the horizon.
        assert not report_k_minus_1.stabilized_early
        assert report_k_minus_1.last_winner_change > 0.8 * horizon

    def test_oracle_agrees_with_the_separation(self):
        problem = AgreementInstance(t=2, k=2, n=3)
        assert verify_separations(problem)
        arms = separations(problem)
        assert any(arm.unsolvable_problem.k == 1 for arm in arms)


class TestTheorem27GridConsistency:
    """The empirical solvable side must lie inside the oracle's solvable region."""

    def test_solvable_cells_match_formula(self):
        problem = AgreementInstance(t=2, k=2, n=4)
        grid = solvability_grid(problem)
        for (i, j), result in grid.items():
            assert result.solvable == (i <= 2 and j - i >= 1)

    def test_matching_system_is_on_the_frontier_and_solvable(self):
        problem = AgreementInstance(t=3, k=2, n=5)
        coords = matching_system(problem)
        assert coords == SystemCoordinates(i=2, j=4, n=5)
        assert is_solvable(problem, coords)
        # One step stronger in either direction becomes unsolvable.
        assert not is_solvable(AgreementInstance(t=4, k=2, n=5), coords)
        assert not is_solvable(AgreementInstance(t=3, k=1, n=5), coords)
