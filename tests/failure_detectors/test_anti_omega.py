"""Tests for the Figure 2 algorithm (t-resilient k-anti-Ω) and the Ω specialization."""

import pytest

from repro.errors import ConfigurationError
from repro.failure_detectors.anti_omega import (
    KAntiOmegaAutomaton,
    k_subsets,
    make_anti_omega_algorithm,
    max_accusation_statistic,
    median_accusation_statistic,
    min_accusation_statistic,
    paper_accusation_statistic,
    paper_timeout_policy,
    doubling_timeout_policy,
    constant_timeout_policy,
)
from repro.failure_detectors.base import FD_OUTPUT, LEADER, WINNER_SET
from repro.failure_detectors.omega import OmegaAutomaton, make_omega_algorithm
from repro.failure_detectors.properties import check_k_anti_omega, check_leader_set_convergence
from repro.memory.registers import RegisterFile
from repro.runtime.crash import CrashPattern
from repro.runtime.observers import OutputTracker
from repro.runtime.simulator import Simulator
from repro.schedules.round_robin import RoundRobinGenerator
from repro.schedules.set_timely import SetTimelyGenerator


def run_detector(generator, t, k, horizon):
    """Shared helper: run the detector on a generated schedule and return trackers."""
    n = generator.n
    registers = RegisterFile()
    KAntiOmegaAutomaton.declare_registers(registers, n=n, k=k)
    automata = make_anti_omega_algorithm(n=n, t=t, k=k)
    simulator = Simulator(n=n, automata=automata, registers=registers)
    fd_tracker = OutputTracker(key=FD_OUTPUT)
    winner_tracker = OutputTracker(key=WINNER_SET)
    simulator.add_observer(fd_tracker)
    simulator.add_observer(winner_tracker)
    simulator.run(generator.infinite(), max_steps=horizon)
    correct = frozenset(range(1, n + 1)) - generator.faulty
    return simulator, fd_tracker, winner_tracker, correct


class TestKSubsets:
    def test_enumeration_and_order(self):
        subsets = k_subsets(4, 2)
        assert len(subsets) == 6
        assert subsets[0] == (1, 2)
        assert subsets == sorted(subsets)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            k_subsets(3, 0)
        with pytest.raises(ConfigurationError):
            k_subsets(3, 4)


class TestStatisticsAndPolicies:
    def test_paper_statistic_is_t_plus_1_smallest(self):
        assert paper_accusation_statistic([5, 1, 3, 2], t=2) == 3
        assert paper_accusation_statistic([5, 1, 3, 2], t=0) == 1

    def test_alternative_statistics(self):
        values = [4, 0, 7, 2]
        assert min_accusation_statistic(values, 1) == 0
        assert max_accusation_statistic(values, 1) == 7
        assert median_accusation_statistic(values, 1) in (2, 4)

    def test_timeout_policies(self):
        assert paper_timeout_policy(3) == 4
        assert doubling_timeout_policy(3) == 6
        assert constant_timeout_policy(3) == 3


class TestParameterValidation:
    def test_bad_t_and_k_rejected(self):
        with pytest.raises(ConfigurationError):
            KAntiOmegaAutomaton(pid=1, n=3, t=3, k=1)
        with pytest.raises(ConfigurationError):
            KAntiOmegaAutomaton(pid=1, n=3, t=2, k=3)
        with pytest.raises(ConfigurationError):
            KAntiOmegaAutomaton(pid=1, n=3, t=0, k=1)

    def test_omega_is_k_equal_one(self):
        omega = OmegaAutomaton(pid=1, n=3, t=2)
        assert omega.k == 1
        with pytest.raises(ConfigurationError):
            OmegaAutomaton(pid=1, n=1, t=1)


class TestOutputShape:
    def test_output_is_complement_of_winnerset(self):
        generator = RoundRobinGenerator(3)
        simulator, fd_tracker, winner_tracker, correct = run_detector(generator, t=2, k=2, horizon=2000)
        for pid in range(1, 4):
            fd_output = simulator.output_of(pid, FD_OUTPUT)
            winnerset = simulator.output_of(pid, WINNER_SET)
            assert isinstance(fd_output, frozenset)
            assert len(fd_output) == 3 - 2
            assert fd_output == frozenset({1, 2, 3}) - frozenset(winnerset)

    def test_iteration_counter_increases(self):
        generator = RoundRobinGenerator(3)
        simulator, *_ = run_detector(generator, t=2, k=1, horizon=3000)
        assert simulator.output_of(1, "iteration") >= 2


class TestConvergence:
    def test_round_robin_failure_free(self):
        generator = RoundRobinGenerator(4)
        _, fd_tracker, winner_tracker, correct = run_detector(generator, t=3, k=2, horizon=20_000)
        verdict = check_k_anti_omega(fd_tracker, winner_tracker, correct, n=4, k=2, horizon=20_000)
        assert verdict.satisfied
        assert verdict.margin() is not None and verdict.margin() > 0.5
        leader = check_leader_set_convergence(winner_tracker, correct)
        assert leader.converged and leader.contains_correct

    def test_set_timely_schedule_with_crashes(self):
        crash = CrashPattern.initial_crashes(4, {4})
        generator = SetTimelyGenerator(
            n=4, p_set={2, 3}, q_set={1, 2, 3}, bound=3, seed=13, crash_pattern=crash
        )
        _, fd_tracker, winner_tracker, correct = run_detector(generator, t=2, k=2, horizon=60_000)
        verdict = check_k_anti_omega(fd_tracker, winner_tracker, correct, n=4, k=2, horizon=60_000)
        assert verdict.satisfied
        assert verdict.witness in correct
        leader = check_leader_set_convergence(winner_tracker, correct)
        assert leader.converged
        assert leader.contains_correct

    def test_crashed_lexicographic_minimum_is_abandoned(self):
        """If the lexicographically smallest k-set is entirely crashed, its
        accusation counters must grow and a set with a correct member must win."""
        crash = CrashPattern.initial_crashes(4, {1, 2})
        generator = SetTimelyGenerator(
            n=4, p_set={3, 4}, q_set={3, 4}, bound=3, seed=29, crash_pattern=crash
        )
        _, fd_tracker, winner_tracker, correct = run_detector(generator, t=2, k=2, horizon=120_000)
        leader = check_leader_set_convergence(winner_tracker, correct)
        assert leader.converged
        assert set(leader.winner_set) & {3, 4}
        verdict = check_k_anti_omega(fd_tracker, winner_tracker, correct, n=4, k=2, horizon=120_000)
        assert verdict.satisfied

    def test_omega_elects_stable_leader(self):
        generator = SetTimelyGenerator(n=3, p_set={2}, q_set={1, 2, 3}, bound=3, seed=31)
        n = generator.n
        registers = RegisterFile()
        KAntiOmegaAutomaton.declare_registers(registers, n=n, k=1)
        automata = make_omega_algorithm(n=n, t=2)
        simulator = Simulator(n=n, automata=automata, registers=registers)
        leader_tracker = OutputTracker(key=LEADER)
        simulator.add_observer(leader_tracker)
        simulator.run(generator.infinite(), max_steps=40_000)
        finals = leader_tracker.final_values()
        assert len(set(finals.values())) == 1
        assert list(finals.values())[0] in {1, 2, 3}


class TestRegisterDeclaration:
    def test_declares_heartbeats_and_counters(self):
        registers = RegisterFile()
        KAntiOmegaAutomaton.declare_registers(registers, n=3, k=2)
        assert registers.peek(("Heartbeat", 1)) == 0
        assert registers.peek(("Counter", (1, 2), 3)) == 0
        # Single-writer ownership is enforced.
        from repro.errors import RegisterError

        with pytest.raises(RegisterError):
            registers.write(("Heartbeat", 1), 5, writer=2)
