"""Experiment E7 as tests: the Section 4.2 lemmas, checked on instrumented runs.

These tests do not re-prove the lemmas; they check that the *behaviour the
lemmas describe* actually occurs in runs of the implementation:

* Counter registers are single-writer and monotonically non-decreasing
  (the premise of Lemma 10);
* sets whose members all crashed are accused without bound by every correct
  process (Lemma 12), so the dead set's accusation overtakes any fixed value;
* the eventual winner set has a correct member (Lemma 20) and all correct
  processes eventually output its complement (Lemma 22 / Theorem 23).
"""

from repro.failure_detectors.anti_omega import KAntiOmegaAutomaton, k_subsets, make_anti_omega_algorithm
from repro.failure_detectors.base import FD_OUTPUT, WINNER_SET
from repro.failure_detectors.properties import check_leader_set_convergence
from repro.memory.registers import RegisterFile
from repro.runtime.crash import CrashPattern
from repro.runtime.observers import OutputTracker
from repro.runtime.simulator import Simulator
from repro.schedules.set_timely import SetTimelyGenerator

N, T, K = 4, 2, 2
HORIZON = 80_000


def run_instrumented(crashes=frozenset({4})):
    crash = CrashPattern.initial_crashes(N, crashes) if crashes else CrashPattern.none(N)
    generator = SetTimelyGenerator(
        n=N, p_set={1, 2}, q_set={1, 2, 3}, bound=3, seed=41, crash_pattern=crash
    )
    registers = RegisterFile()
    KAntiOmegaAutomaton.declare_registers(registers, n=N, k=K)
    automata = make_anti_omega_algorithm(n=N, t=T, k=K)
    simulator = Simulator(n=N, automata=automata, registers=registers)
    fd_tracker = OutputTracker(key=FD_OUTPUT)
    winner_tracker = OutputTracker(key=WINNER_SET)
    simulator.add_observer(fd_tracker)
    simulator.add_observer(winner_tracker)

    counter_samples = {}

    def sample_counters(step, pid, sim):
        if step % 5000 != 0:
            return
        snapshot = {}
        for a_set in k_subsets(N, K):
            for q in range(1, N + 1):
                snapshot[(a_set, q)] = sim.registers.peek(("Counter", a_set, q)) or 0
        counter_samples[step] = snapshot

    simulator.add_observer(sample_counters)
    simulator.run(generator.infinite(), max_steps=HORIZON)
    correct = frozenset(range(1, N + 1)) - generator.faulty
    return simulator, fd_tracker, winner_tracker, counter_samples, correct


class TestLemmas:
    def test_counters_are_monotonic(self):
        """Lemma 10's premise: every Counter[A, q] is non-decreasing over time."""
        _, _, _, samples, _ = run_instrumented()
        steps = sorted(samples)
        assert len(steps) >= 3
        for earlier, later in zip(steps, steps[1:]):
            for key, value in samples[earlier].items():
                assert samples[later][key] >= value

    def test_dead_set_is_accused_unboundedly(self):
        """Lemma 12: if every member of A crashed, correct processes keep accusing A."""
        crashes = frozenset({3, 4})
        crash = CrashPattern.initial_crashes(N, crashes)
        generator = SetTimelyGenerator(
            n=N, p_set={1, 2}, q_set={1, 2}, bound=3, seed=43, crash_pattern=crash
        )
        registers = RegisterFile()
        KAntiOmegaAutomaton.declare_registers(registers, n=N, k=K)
        automata = make_anti_omega_algorithm(n=N, t=T, k=K)
        simulator = Simulator(n=N, automata=automata, registers=registers)
        simulator.run(generator.infinite(), max_steps=30_000)
        early = simulator.registers.peek(("Counter", (3, 4), 1)) or 0
        simulator.run(generator.infinite(), max_steps=30_000)
        late = simulator.registers.peek(("Counter", (3, 4), 1)) or 0
        assert late > early > 0

    def test_winner_set_contains_correct_process(self):
        """Lemma 20: the stabilized winner set A0 has a correct member."""
        _, _, winner_tracker, _, correct = run_instrumented()
        verdict = check_leader_set_convergence(winner_tracker, correct)
        assert verdict.converged
        assert verdict.contains_correct

    def test_all_correct_processes_output_complement_of_a0(self):
        """Lemma 22: eventually every correct process outputs Πn − A0."""
        simulator, fd_tracker, winner_tracker, _, correct = run_instrumented()
        verdict = check_leader_set_convergence(winner_tracker, correct)
        assert verdict.converged
        a0 = frozenset(verdict.winner_set)
        for pid in correct:
            assert simulator.output_of(pid, FD_OUTPUT) == frozenset(range(1, N + 1)) - a0

    def test_fd_output_always_has_n_minus_k_processes(self):
        _, fd_tracker, _, _, correct = run_instrumented()
        for change in fd_tracker.changes:
            if change.value is not None:
                assert len(change.value) == N - K
