"""Compiled schedules: buffer fidelity, crash metadata, kernel integration."""

from array import array

import pytest

from repro.core.schedule import CompiledSchedule, Schedule
from repro.errors import ConfigurationError, ScheduleError, SimulationError
from repro.runtime.kernel import normalize_source
from repro.scenarios.spec import build_generator

FAMILY_PARAMS = [
    {"schedule": "round-robin", "n": 3},
    {"schedule": "random", "n": 4, "seed": 5},
    {"schedule": "set-timely", "n": 4, "p_set": [1, 2], "q_set": [1, 2, 3], "bound": 3,
     "seed": 7, "crashes": [4]},
    {"schedule": "crash-churn", "n": 5, "seed": 3, "period": 16, "outage": 4},
    {"schedule": "set-timely", "n": 4, "p_set": [1, 2], "q_set": [1, 2, 3], "bound": 3,
     "seed": 9, "crash_steps": {"3": 120}},
]


class TestCompileFidelity:
    @pytest.mark.parametrize("params", FAMILY_PARAMS, ids=lambda p: p["schedule"])
    def test_compiled_buffer_matches_generated_prefix(self, params):
        length = 400
        compiled = build_generator(params).compile(length)
        generated = build_generator(params).generate(length)
        assert list(compiled.steps) == list(generated.steps)
        assert compiled.n == generated.n
        assert compiled.faulty == build_generator(params).faulty

    @pytest.mark.parametrize("params", FAMILY_PARAMS, ids=lambda p: p["schedule"])
    def test_prefix_round_trips_schedule_with_faulty_hint(self, params):
        length = 300
        compiled = build_generator(params).compile(length)
        for prefix_length in (0, 100, 150, 300):
            expected = build_generator(params).generate(prefix_length)
            actual = compiled.prefix(prefix_length)
            assert actual == expected

    def test_compile_carries_description_and_length(self):
        generator = build_generator(FAMILY_PARAMS[2])
        compiled = generator.compile(123)
        assert len(compiled) == 123
        assert compiled.description == generator.description

    def test_compile_rejects_negative_length(self):
        with pytest.raises(ConfigurationError):
            build_generator(FAMILY_PARAMS[0]).compile(-1)

    def test_step_counts_match_schedule_counts(self):
        params = FAMILY_PARAMS[1]
        compiled = build_generator(params).compile(500)
        assert compiled.step_counts() == build_generator(params).generate(500).counts()
        # Cached object: a second call returns the identical mapping.
        assert compiled.step_counts() is compiled.step_counts()


class TestCompiledScheduleValidation:
    def test_arbitrary_iterables_are_coerced_to_int_arrays(self):
        compiled = CompiledSchedule(n=3, steps=[1, 2, 3, 1])
        assert isinstance(compiled.steps, array)
        assert compiled.steps.typecode == "i"
        assert list(compiled) == [1, 2, 3, 1]

    def test_out_of_range_steps_rejected(self):
        with pytest.raises(ScheduleError):
            CompiledSchedule(n=2, steps=[1, 3])
        with pytest.raises(ScheduleError):
            CompiledSchedule(n=2, steps=[0, 1])

    def test_crash_metadata_validated_and_normalized(self):
        compiled = CompiledSchedule(n=3, steps=[1, 2], crash_steps={"3": 50})
        assert compiled.crash_steps == {3: 50}
        assert compiled.faulty == frozenset({3})
        assert compiled.crashed_by(49) == frozenset()
        assert compiled.crashed_by(50) == frozenset({3})
        with pytest.raises(ScheduleError):
            CompiledSchedule(n=2, steps=[1], crash_steps={5: 0})
        with pytest.raises(ScheduleError):
            CompiledSchedule(n=2, steps=[1], crash_steps={1: -1})

    def test_prefix_beyond_buffer_raises(self):
        # Regression: a silently truncated prefix would pair the hint computed
        # for the requested length with fewer steps than that length implies.
        compiled = build_generator(FAMILY_PARAMS[0]).compile(100)
        with pytest.raises(ScheduleError, match="exceeds the compiled buffer"):
            compiled.prefix(101)
        assert len(compiled.prefix(100).steps) == 100
        assert len(compiled.prefix().steps) == 100

    def test_zero_message_buffer_prefix(self):
        # Regression: a zero-length buffer (e.g. a distsim timeline reduced
        # before anyone stepped) still yields a coherent empty prefix, and the
        # crash metadata stays queryable.
        compiled = CompiledSchedule(n=3, steps=[], crash_steps={1: 0, 2: 4})
        empty = compiled.prefix()
        assert empty.steps == ()
        assert empty.faulty_hint == frozenset({1})
        assert compiled.crashed_by(4) == frozenset({1, 2})
        with pytest.raises(ScheduleError):
            compiled.prefix(1)


class TestKernelIntegration:
    def test_normalize_source_iterates_the_raw_buffer(self):
        compiled = CompiledSchedule(n=3, steps=[1, 2, 3, 1, 2])
        step_iter, budget = normalize_source(3, compiled, None)
        assert budget == 5
        assert list(step_iter) == [1, 2, 3, 1, 2]

    def test_normalize_source_caps_budget_at_max_steps(self):
        compiled = CompiledSchedule(n=3, steps=[1, 2, 3, 1, 2])
        _, budget = normalize_source(3, compiled, 2)
        assert budget == 2
        _, budget = normalize_source(3, compiled, 50)
        assert budget == 5

    def test_normalize_source_rejects_mismatched_universe(self):
        compiled = CompiledSchedule(n=3, steps=[1, 2, 3])
        with pytest.raises(SimulationError, match="Π3"):
            normalize_source(4, compiled, None)

    def test_simulator_accepts_compiled_schedule(self):
        from repro.runtime.automaton import FunctionAutomaton, WriteOp
        from repro.runtime.simulator import build_simulator

        def program(automaton, ctx):
            count = 0
            while True:
                count += 1
                yield WriteOp(("scratch", automaton.pid), count)

        compiled = CompiledSchedule(n=2, steps=[1, 2, 1, 1])
        simulator = build_simulator(2, lambda pid: FunctionAutomaton(pid, 2, program))
        result = simulator.run_fast(compiled)
        assert result.steps_executed == 4
        assert simulator.steps_taken(1) == 3 and simulator.steps_taken(2) == 1
        assert simulator.registers.peek(("scratch", 1)) == 3
