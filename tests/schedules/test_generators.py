"""Tests for the schedule generators and their structural guarantees."""

import pytest

from repro.core.timeliness import analyze_timeliness
from repro.errors import ConfigurationError
from repro.runtime.crash import CrashPattern
from repro.schedules.adversary import CarrierRotationAdversary, EventuallySynchronousGenerator
from repro.schedules.random_schedule import RandomGenerator
from repro.schedules.round_robin import RoundRobinGenerator
from repro.schedules.set_timely import SetTimelyGenerator


class TestRoundRobin:
    def test_cycles_in_order(self):
        generator = RoundRobinGenerator(4)
        assert generator.generate(9).steps == (1, 2, 3, 4, 1, 2, 3, 4, 1)

    def test_crashed_processes_skipped(self):
        generator = RoundRobinGenerator(3, crash_pattern=CrashPattern.initial_crashes(3, {2}))
        schedule = generator.generate(6)
        assert 2 not in schedule.participants()
        assert schedule.faulty_hint == frozenset({2})

    def test_custom_order_and_validation(self):
        generator = RoundRobinGenerator(3, order=(3, 1))
        assert generator.generate(4).steps == (3, 1, 3, 1)
        with pytest.raises(ConfigurationError):
            RoundRobinGenerator(3, order=(1, 1))
        with pytest.raises(ConfigurationError):
            RoundRobinGenerator(3, order=(4,))

    def test_guarantee(self):
        guarantee = RoundRobinGenerator(3).guarantee()
        assert guarantee.bound == 3
        assert guarantee.p_set == frozenset({1, 2, 3})


class TestRandomGenerator:
    def test_deterministic_given_seed(self):
        a = RandomGenerator(4, seed=9).generate(50)
        b = RandomGenerator(4, seed=9).generate(50)
        assert a.steps == b.steps

    def test_different_seeds_differ(self):
        assert RandomGenerator(4, seed=1).generate(50).steps != RandomGenerator(4, seed=2).generate(50).steps

    def test_respects_crash_pattern(self):
        generator = RandomGenerator(3, seed=3, crash_pattern=CrashPattern.crashes_at(3, {1: 10}))
        schedule = generator.generate(200)
        assert 1 not in schedule.steps[10:]

    def test_weights(self):
        generator = RandomGenerator(2, seed=4, weights={2: 0.0})
        assert set(generator.generate(30).steps) == {1}
        with pytest.raises(ConfigurationError):
            RandomGenerator(2, weights={1: 0.0, 2: 0.0})
        with pytest.raises(ConfigurationError):
            RandomGenerator(2, weights={5: 1.0})


class TestSetTimelyGenerator:
    def test_guarantee_holds_on_prefixes(self):
        generator = SetTimelyGenerator(n=5, p_set={1, 2}, q_set={3, 4, 5}, bound=3, seed=1)
        guarantee = generator.guarantee()
        for length in (200, 2000, 8000):
            schedule = generator.generate(length)
            witness = analyze_timeliness(schedule, guarantee.p_set, guarantee.q_set)
            assert witness.minimal_bound <= guarantee.bound

    def test_individual_members_not_timely(self):
        generator = SetTimelyGenerator(n=4, p_set={1, 2}, q_set={3, 4}, bound=3, seed=2)
        short = generator.generate(500)
        long = generator.generate(5000)
        for member in (1, 2):
            assert (
                analyze_timeliness(long, {member}, {3, 4}).minimal_bound
                > analyze_timeliness(short, {member}, {3, 4}).minimal_bound
            )

    def test_every_correct_process_steps(self):
        generator = SetTimelyGenerator(n=5, p_set={1, 2}, q_set={3, 4, 5}, bound=3, seed=3)
        schedule = generator.generate(4000)
        assert schedule.participants() == frozenset(range(1, 6))

    def test_crash_pattern_respected(self):
        crash = CrashPattern.initial_crashes(5, {5})
        generator = SetTimelyGenerator(n=5, p_set={1, 2}, q_set={1, 2, 3}, bound=3, seed=4, crash_pattern=crash)
        schedule = generator.generate(3000)
        assert 5 not in schedule.participants()

    def test_all_p_crashed_rejected(self):
        with pytest.raises(ConfigurationError):
            SetTimelyGenerator(
                n=4, p_set={1, 2}, q_set={3, 4}, crash_pattern=CrashPattern.initial_crashes(4, {1, 2})
            )

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SetTimelyGenerator(n=4, p_set=set(), q_set={1})
        with pytest.raises(ConfigurationError):
            SetTimelyGenerator(n=4, p_set={1}, q_set={2}, bound=1)
        with pytest.raises(ConfigurationError):
            SetTimelyGenerator(n=4, p_set={9}, q_set={2})

    def test_burst_processes(self):
        generator = SetTimelyGenerator(
            n=4, p_set={1, 2}, q_set={1, 2, 3}, bound=3, seed=6,
            burst_set={4}, burst_base=50, burst_growth=20,
        )
        schedule = generator.generate(4000)
        # The guarantee still holds ...
        assert analyze_timeliness(schedule, {1, 2}, {1, 2, 3}).minimal_bound <= 3
        # ... but P is not timely with respect to the bursty process.
        assert analyze_timeliness(schedule, {1, 2}, {4}).minimal_bound > 20

    def test_burst_in_q_rejected(self):
        with pytest.raises(ConfigurationError):
            SetTimelyGenerator(n=4, p_set={1}, q_set={2, 4}, burst_set={4}, burst_base=10)


class TestCarrierRotationAdversary:
    def test_carrier_set_timely_but_subsets_are_not(self):
        adversary = CarrierRotationAdversary(n=3, carriers={1, 2})
        schedule = adversary.generate(6000)
        assert analyze_timeliness(schedule, {1, 2}, {1, 2, 3}).minimal_bound <= adversary.guarantee().bound
        for subset in ({1}, {2}, {3}, {1, 3}, {2, 3}):
            if frozenset({1, 2}) <= frozenset(subset):
                continue
            witness = analyze_timeliness(schedule, subset, {1, 2, 3})
            assert witness.minimal_bound > 10, subset

    def test_everyone_correct(self):
        adversary = CarrierRotationAdversary(n=4, carriers={1, 2, 3})
        schedule = adversary.generate(5000)
        assert schedule.participants() == frozenset({1, 2, 3, 4})
        assert adversary.faulty == frozenset()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CarrierRotationAdversary(n=3, carriers=set())
        with pytest.raises(ConfigurationError):
            CarrierRotationAdversary(n=3, carriers={7})
        with pytest.raises(ConfigurationError):
            CarrierRotationAdversary(
                n=3, carriers={1}, crash_pattern=CrashPattern.initial_crashes(3, {1})
            )

    def test_starved_sets_claim_is_text(self):
        assert "carriers" in CarrierRotationAdversary(n=3, carriers={1, 2}).starved_sets_claim()


class TestEventuallySynchronous:
    def test_round_robin_after_chaos(self):
        generator = EventuallySynchronousGenerator(n=3, chaos_steps=30, seed=8)
        schedule = generator.generate(300)
        tail = schedule.suffix(30)
        # After the chaotic prefix every process appears once per 3 steps.
        assert analyze_timeliness(tail, {1}, {2, 3}).minimal_bound <= 3

    def test_guarantee_covers_whole_schedule(self):
        generator = EventuallySynchronousGenerator(n=3, chaos_steps=50, seed=9)
        guarantee = generator.guarantee()
        schedule = generator.generate(1000)
        witness = analyze_timeliness(schedule, guarantee.p_set, guarantee.q_set)
        assert witness.minimal_bound <= guarantee.bound
