"""Tests for safe agreement and the BG-style simulation (experiment E8)."""

import random

import pytest

from repro.bg.safe_agreement import SafeAgreement, SafeAgreementStatus
from repro.bg.simulation import (
    BGSimulatorAutomaton,
    SimulatedProtocol,
    full_information_agreement_protocol,
    make_bg_simulators,
)
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.runtime.automaton import FunctionAutomaton
from repro.runtime.simulator import Simulator


def run_safe_agreement(n, proposals, schedule_steps, name="sa"):
    obj = SafeAgreement(name=name, n=n)
    outcomes = {}

    def factory(pid):
        def program(automaton, ctx):
            yield from obj.propose(automaton.pid, proposals[automaton.pid])
            value = yield from obj.resolve(automaton.pid)
            outcomes[automaton.pid] = value
        return program

    automata = {pid: FunctionAutomaton(pid=pid, n=n, function=factory(pid)) for pid in range(1, n + 1)}
    simulator = Simulator(n=n, automata=automata)
    simulator.run(Schedule(steps=tuple(schedule_steps), n=n))
    return outcomes


class TestSafeAgreement:
    def test_solo_run_decides_own_value(self):
        outcomes = run_safe_agreement(3, {1: "a", 2: "b", 3: "c"}, [1] * 30)
        assert outcomes == {1: "a"}

    def test_agreement_and_validity_under_random_schedules(self):
        for seed in range(10):
            rng = random.Random(seed)
            steps = [rng.randint(1, 3) for _ in range(400)]
            outcomes = run_safe_agreement(3, {1: "a", 2: "b", 3: "c"}, steps, name=("sa", seed))
            values = set(outcomes.values())
            assert len(values) == 1
            assert values <= {"a", "b", "c"}

    def test_pending_while_proposer_is_inside_unsafe_window(self):
        """A proposer paused between its two writes blocks resolution (by design)."""
        obj = SafeAgreement(name="window", n=2)
        statuses = []

        def proposer(automaton, ctx):
            yield from obj.propose(1, "slow")

        def resolver(automaton, ctx):
            outcome = yield from obj.try_resolve(2)
            statuses.append(outcome.status)
            automaton.publish("status", outcome.status)

        automata = {
            1: FunctionAutomaton(pid=1, n=2, function=proposer),
            2: FunctionAutomaton(pid=2, n=2, function=resolver),
        }
        simulator = Simulator(n=2, automata=automata)
        # Process 1 takes exactly one step (its level-1 write), then process 2
        # attempts a full resolution and must see PENDING.
        simulator.run(Schedule(steps=(1,) + (2,) * 10, n=2))
        assert statuses == [SafeAgreementStatus.PENDING]

    def test_resolution_after_window_closes(self):
        obj = SafeAgreement(name="window2", n=2)
        results = {}

        def proposer(automaton, ctx):
            yield from obj.propose(1, "done")
            results[1] = yield from obj.resolve(1)

        def resolver(automaton, ctx):
            results[2] = yield from obj.resolve(2)

        automata = {
            1: FunctionAutomaton(pid=1, n=2, function=proposer),
            2: FunctionAutomaton(pid=2, n=2, function=resolver),
        }
        simulator = Simulator(n=2, automata=automata)
        simulator.run(Schedule(steps=(1,) * 20 + (2,) * 20, n=2))
        assert results == {1: "done", 2: "done"}


class TestSimulatedProtocol:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulatedProtocol(threads=0, rounds=1, step=lambda *a: None, decide=lambda *a: None)
        with pytest.raises(ConfigurationError):
            SimulatedProtocol(threads=2, rounds=0, step=lambda *a: None, decide=lambda *a: None)

    def test_make_simulators_requires_all_inputs(self):
        protocol = full_information_agreement_protocol(threads=3)
        with pytest.raises(ConfigurationError):
            make_bg_simulators(3, protocol, {1: 0})


class TestBGSimulation:
    def run_simulation(self, m, threads, schedule_steps, inputs=None, namespace="bgtest"):
        protocol = full_information_agreement_protocol(threads=threads)
        inputs = inputs if inputs is not None else {pid: pid * 10 for pid in range(1, m + 1)}
        automata = make_bg_simulators(m, protocol, inputs, namespace=namespace)
        simulator = Simulator(n=m, automata=automata)
        simulator.run(Schedule(steps=tuple(schedule_steps), n=m))
        return simulator, automata

    def test_simulators_agree_on_every_simulated_decision(self):
        for seed in range(5):
            rng = random.Random(seed)
            steps = [rng.randint(1, 3) for _ in range(20_000)]
            simulator, automata = self.run_simulation(3, threads=5, schedule_steps=steps, namespace=("bg", seed))
            per_thread = {}
            for pid, automaton in automata.items():
                for thread, decision in automaton.simulated_decisions().items():
                    per_thread.setdefault(thread, set()).add(decision)
            for thread, decisions in per_thread.items():
                assert len(decisions) == 1, f"simulators disagree on thread {thread}"

    def test_decisions_are_agreed_inputs(self):
        simulator, automata = self.run_simulation(
            3, threads=4, schedule_steps=[1, 2, 3] * 8000, inputs={1: 7, 2: 9, 3: 11}
        )
        decisions = set()
        for automaton in automata.values():
            decisions.update(automaton.simulated_decisions().values())
        assert decisions
        assert decisions <= {7, 9, 11}

    def test_crashed_simulator_blocks_at_most_one_thread(self):
        """The defining BG property: a simulator that stops inside one unsafe
        window prevents at most one simulated thread from progressing."""
        threads = 5
        protocol = full_information_agreement_protocol(threads=threads)
        inputs = {1: 1, 2: 2, 3: 3}
        automata = make_bg_simulators(3, protocol, inputs, namespace="bgcrash")
        simulator = Simulator(n=3, automata=automata)
        # Simulator 3 takes a single step (entering the first thread's unsafe
        # window) and then crashes: it never appears in the schedule again.
        steps = (3,) + tuple([1, 2] * 40_000)
        simulator.run(Schedule(steps=steps, n=3))
        # The two live simulators must still decide at least threads - 1 threads.
        for pid in (1, 2):
            decided = automata[pid].simulated_decisions()
            assert len(decided) >= threads - 1, (
                f"simulator {pid} decided only {sorted(decided)} — a single crashed "
                "simulator may block at most one simulated thread"
            )

    def test_failure_free_run_decides_every_thread(self):
        simulator, automata = self.run_simulation(3, threads=4, schedule_steps=[1, 2, 3] * 15_000)
        for automaton in automata.values():
            assert len(automaton.simulated_decisions()) == 4
            assert automaton.halted if hasattr(automaton, "halted") else True
