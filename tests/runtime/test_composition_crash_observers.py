"""Tests for intra-process composition, crash patterns, and output observers."""

import pytest

from repro.core.schedule import Schedule
from repro.errors import ConfigurationError, SimulationError
from repro.runtime.automaton import FunctionAutomaton, ProcessAutomaton, ReadOp, WriteOp
from repro.runtime.composition import ComposedAutomaton, compose
from repro.runtime.crash import CrashPattern
from repro.runtime.observers import OutputTracker
from repro.runtime.simulator import Simulator


class Counter(ProcessAutomaton):
    """Publishes how many writes it has performed; never halts."""

    def program(self, ctx):
        count = 0
        while True:
            count += 1
            self.publish("count", count)
            yield WriteOp(("counter", self.params["tag"], self.pid), count)


class Finite(ProcessAutomaton):
    """Performs exactly three writes then halts."""

    def program(self, ctx):
        for index in range(3):
            yield WriteOp(("finite", self.pid, index), index)
        self.publish("done", True)
        return "finished"


class TestComposedAutomaton:
    def test_components_alternate_steps(self):
        detector = Counter(1, 1, tag="a")
        agreement = Counter(1, 1, tag="b")
        composed = ComposedAutomaton(1, 1, components=[("a", detector), ("b", agreement)])
        simulator = Simulator(n=1, automata={1: composed})
        simulator.run(Schedule(steps=(1,) * 10, n=1))
        # 10 steps split fairly: 5 each.
        assert detector.output("count") == 5
        assert agreement.output("count") == 5

    def test_outputs_reexported(self):
        worker = Counter(1, 1, tag="x")
        composed = compose(1, 1, worker=worker)
        simulator = Simulator(n=1, automata={1: composed})
        simulator.run(Schedule(steps=(1,) * 4, n=1))
        assert composed.output("worker.count") == 4
        assert composed.output("count") == 4

    def test_halted_component_drops_out(self):
        finite = Finite(1, 1)
        forever = Counter(1, 1, tag="y")
        composed = compose(1, 1, finite=finite, forever=forever)
        simulator = Simulator(n=1, automata={1: composed})
        simulator.run(Schedule(steps=(1,) * 12, n=1))
        assert finite.output("done") is True
        # The finite component used 3 steps; the rest went to the other one.
        assert forever.output("count") == 12 - 3

    def test_component_lookup_and_errors(self):
        worker = Counter(1, 1, tag="z")
        composed = compose(1, 1, worker=worker)
        assert composed.component("worker") is worker
        with pytest.raises(SimulationError):
            composed.component("nope")
        with pytest.raises(SimulationError):
            ComposedAutomaton(1, 1, components=[])
        with pytest.raises(SimulationError):
            ComposedAutomaton(1, 2, components=[("w", Counter(2, 2, tag="w"))])


class TestCrashPattern:
    def test_none_pattern(self):
        pattern = CrashPattern.none(4)
        assert pattern.faulty == frozenset()
        assert pattern.correct == frozenset({1, 2, 3, 4})
        assert pattern.tolerates(0)
        assert pattern.describe() == "failure-free"

    def test_initial_crashes(self):
        pattern = CrashPattern.initial_crashes(4, {2, 4})
        assert pattern.faulty == frozenset({2, 4})
        assert pattern.is_crashed(2, 0)
        assert not pattern.is_crashed(1, 1000)
        assert pattern.alive_at(0) == frozenset({1, 3})

    def test_crashes_at(self):
        pattern = CrashPattern.crashes_at(3, {2: 100})
        assert not pattern.is_crashed(2, 99)
        assert pattern.is_crashed(2, 100)
        assert pattern.failure_count == 1
        assert "2@100" in pattern.describe()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashPattern(n=2, crash_steps={5: 0})
        with pytest.raises(ConfigurationError):
            CrashPattern(n=2, crash_steps={1: -1})
        with pytest.raises(ConfigurationError):
            CrashPattern(n=0)


class TestOutputTracker:
    def test_records_only_changes(self):
        worker = Counter(1, 1, tag="t")
        simulator = Simulator(n=1, automata={1: worker})
        tracker = OutputTracker(key="count")
        simulator.add_observer(tracker)
        simulator.run(Schedule(steps=(1,) * 5, n=1))
        assert [change.value for change in tracker.changes] == [1, 2, 3, 4, 5]
        assert tracker.final_value(1) == 5
        assert tracker.last_change_step(1) == 5
        assert tracker.stabilization_step([1]) == 5

    def test_value_at(self):
        worker = Counter(1, 1, tag="t")
        simulator = Simulator(n=1, automata={1: worker})
        tracker = OutputTracker(key="count")
        simulator.add_observer(tracker)
        simulator.run(Schedule(steps=(1,) * 5, n=1))
        assert tracker.value_at(1, 3) == 3
        assert tracker.value_at(1, 0) is None

    def test_stable_output_not_rerecorded(self):
        def program(automaton, ctx):
            automaton.publish("flag", "steady")
            while True:
                yield ReadOp("whatever")

        worker = FunctionAutomaton(pid=1, n=1, function=program)
        simulator = Simulator(n=1, automata={1: worker})
        tracker = OutputTracker(key="flag")
        simulator.add_observer(tracker)
        simulator.run(Schedule(steps=(1,) * 50, n=1))
        assert len(tracker.changes) == 1
        assert tracker.final_values() == {1: "steady"}
