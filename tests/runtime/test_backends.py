"""Backend conformance: every execution backend is differentially pinned.

The conformance contract (:class:`repro.runtime.backends.Backend`) says a
backend may change *how* a batch is driven but nothing observable: outputs,
tracker change sequences, halting, per-process step accounting, register
values and operation counts, and the per-replica ``RunResult`` must be
byte-identical to the reference backend.  This suite enforces that contract
*generically*: the sweep below runs over every registered backend, so a new
backend joins the differential matrix by calling ``register_backend`` — no
test changes needed.

Two sweeps pin the contract:

* the randomized scenario sweep (50+ seeded combos reusing the scenario
  families and workload generators from the batch/kernel suites) runs every
  combo through the reference backend and the backend under test and asserts
  byte-identity — including the vector backend's transparent fallback lane
  for workloads it cannot lower;
* the vector-native sweep drives the lowered automata (anti-Ω, trivial
  k-set agreement, decision polls, idle churn) with ``require_lowering=True``
  so a silent fallback cannot mask a lowering bug.

Edge cases (batch of 1, empty schedule, crash at step 0, chunk-straddling
batches, mid-batch single-writer violations, strict mode) are asserted
identical across backends as well.
"""

import random

import pytest

import test_batch
from repro.agreement.consensus import DecisionPollAutomaton
from repro.agreement.kset import DECISION
from repro.agreement.trivial import TrivialKSetAgreementAutomaton
from repro.core.schedule import CompiledSchedule
from repro.errors import ConfigurationError, RegisterError, SimulationError
from repro.failure_detectors.anti_omega import (
    KAntiOmegaAutomaton,
    constant_timeout_policy,
    doubling_timeout_policy,
    make_anti_omega_algorithm,
    max_accusation_statistic,
    median_accusation_statistic,
    min_accusation_statistic,
    paper_accusation_statistic,
    paper_timeout_policy,
)
from repro.failure_detectors.base import FD_OUTPUT
from repro.memory.registers import RegisterFile
from repro.runtime import vector_backend
from repro.runtime.automaton import IdleAutomaton
from repro.runtime.backends import (
    Backend,
    ReferenceBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    _BACKENDS,
)
from repro.runtime.kernel import FAST, FAST_TRACED, execute_batch
from repro.runtime.observers import OutputTracker
from repro.runtime.simulator import Simulator
from repro.runtime.vector_backend import VectorBackend
from repro.scenarios.spec import build_generator

STATISTICS = [
    paper_accusation_statistic,
    min_accusation_statistic,
    max_accusation_statistic,
    median_accusation_statistic,
]
POLICIES = [paper_timeout_policy, doubling_timeout_policy, constant_timeout_policy]


@pytest.fixture(params=sorted(backend_names()))
def backend_name(request):
    """Every registered backend; unavailable ones skip (e.g. vector sans numpy)."""
    name = request.param
    if not get_backend(name).available():
        pytest.skip(f"backend {name!r} unavailable in this environment")
    return name


def observable(sim):
    """Everything a backend may not change, in one comparable value."""
    arena = sim.registers.arena_view()
    return (
        tuple(dict(sim._states[p].automaton.outputs) for p in range(1, sim.n + 1)),
        tuple(sim._states[p].steps_taken for p in range(1, sim.n + 1)),
        sim.halted_processes(),
        sim._step_index,
        list(arena.values),
        list(arena.read_counts),
        list(arena.write_counts),
    )


def result_view(result):
    return (
        result.outputs,
        result.steps_executed,
        result.stopped_early,
        result.halted_processes,
        result.executed_schedule.steps,
    )


# ----------------------------------------------------------------------
# Workload builders for the sweeps
# ----------------------------------------------------------------------

def _anti_omega_replica(n, t, k, statistic, policy, tracked):
    registers = RegisterFile()
    KAntiOmegaAutomaton.declare_registers(registers, n=n, k=k)
    automata = make_anti_omega_algorithm(
        n=n, t=t, k=k, accusation_statistic=statistic, timeout_policy=policy
    )
    sim = Simulator(n=n, automata=automata, registers=registers)
    tracker = None
    if tracked:
        tracker = OutputTracker(key=FD_OUTPUT)
        sim.add_observer(tracker)
    return sim, tracker


def _trivial_replica(n, t, k, base, tracked, strict=False):
    automata = {
        pid: TrivialKSetAgreementAutomaton(pid, n, t=t, k=k, input_value=base + pid)
        for pid in range(1, n + 1)
    }
    sim = Simulator(n=n, automata=automata, strict=strict)
    tracker = None
    if tracked:
        tracker = OutputTracker(key=DECISION)
        sim.add_observer(tracker)
    return sim, tracker


def _poll_idle_replica(n, tracked):
    registers = RegisterFile()
    registers.declare(("consensus", "decision"), initial=None, writer=None)
    automata = {
        pid: (
            DecisionPollAutomaton(pid, n)
            if pid <= (n + 1) // 2
            else IdleAutomaton(pid, n)
        )
        for pid in range(1, n + 1)
    }
    sim = Simulator(n=n, automata=automata, registers=registers)
    tracker = None
    if tracked:
        tracker = OutputTracker(key=DECISION)
        sim.add_observer(tracker)
    return sim, tracker


def _fallback_replica(program, n, tracked):
    return test_batch._fresh(n, program, tracked=tracked)


def _random_masks(rng, replicas, n, horizon):
    """Per-replica crash masks: None, crash-at-0 and mid-run crashes mixed."""
    masks = []
    for _ in range(replicas):
        if rng.random() < 0.4:
            masks.append(None)
        else:
            crashed = rng.sample(range(1, n + 1), rng.randint(1, max(1, n - 1)))
            masks.append({pid: rng.randint(0, horizon) for pid in crashed})
    if all(mask is None for mask in masks):
        return None
    return masks


def _make_replicas(kind, rng, n, combo_seed, tracked):
    """Build one replica (simulator, tracker) for ``kind``; deterministic per combo."""
    if kind == "anti-omega":
        t = 1 + combo_seed % (n - 1)
        k = 1 + (combo_seed // 3) % (n - 1)
        statistic = STATISTICS[combo_seed % len(STATISTICS)]
        policy = POLICIES[combo_seed % len(POLICIES)]
        return _anti_omega_replica(n, t, k, statistic, policy, tracked)
    if kind == "trivial":
        t = 1 + combo_seed % (n - 1)
        k = t + 1 + (combo_seed // 5) % (n - t)
        return _trivial_replica(n, t, k, base=100 * combo_seed, tracked=tracked)
    if kind == "poll-idle":
        return _poll_idle_replica(n, tracked)
    return _fallback_replica(test_batch.ALGORITHMS[kind], n, tracked)


SWEEP_KINDS = [
    "anti-omega",
    "trivial",
    "poll-idle",
    "token",
    "halting",
    "owned-counter",
]


# ----------------------------------------------------------------------
# The conformance sweep: every backend, 50+ seeded combos
# ----------------------------------------------------------------------

class TestBackendConformanceSweep:
    def test_fifty_plus_seeded_combos_byte_identical_to_reference(self, backend_name):
        """The headline differential: reference vs. backend on 54 seeded combos.

        Scenario families and horizons come from the batch suite's seeded
        generator; workloads alternate between the vector-lowered automata
        and the generator-driven fallback programs, so for the vector backend
        the sweep exercises both the column lane and the transparent
        fallback.  Every combo asserts the full observable state, the
        ``RunResult`` view and the tracker change sequence.
        """
        backend = get_backend(backend_name)
        rng = random.Random(20260807)
        combos = 0
        while combos < 54:
            params, horizon = test_batch._random_combination(rng)
            n = build_generator(params).n
            if n < 3:
                continue
            kind = SWEEP_KINDS[combos % len(SWEEP_KINDS)]
            tracked = combos % 2 == 0
            policy = FAST_TRACED if combos % 9 == 4 else FAST
            compiled = build_generator(params).compile(horizon)
            replicas = 3
            masks = _random_masks(rng, replicas, n, horizon)
            ref = [_make_replicas(kind, rng, n, combos, tracked) for _ in range(replicas)]
            new = [_make_replicas(kind, rng, n, combos, tracked) for _ in range(replicas)]
            ref_results = execute_batch(
                [s for s, _ in ref], compiled, policy=policy, crash_steps=masks
            )
            new_results = execute_batch(
                [s for s, _ in new],
                compiled,
                policy=policy,
                crash_steps=masks,
                backend=backend,
            )
            context = f"combo {combos}: {kind} on {params!r} horizon={horizon}"
            for (rs, rt), (ns, nt), rr, nr in zip(ref, new, ref_results, new_results):
                assert observable(rs) == observable(ns), context
                assert result_view(rr) == result_view(nr), context
                if tracked:
                    assert rt.changes == nt.changes, context
                if policy.collect_trace:
                    assert rs.trace().steps == ns.trace().steps, context
            combos += 1

    def test_vector_native_sweep_requires_lowering(self):
        """The lowered automata sweep cannot silently fall back to the reference."""
        if not get_backend("vector").available():
            pytest.skip("vector backend unavailable")
        rng = random.Random(777)
        for combo in range(18):
            params, horizon = test_batch._random_combination(rng)
            n = build_generator(params).n
            if n < 3:
                continue
            kind = ("anti-omega", "trivial", "poll-idle")[combo % 3]
            compiled = build_generator(params).compile(horizon)
            masks = _random_masks(rng, 4, n, horizon)
            ref = [_make_replicas(kind, rng, n, combo, True) for _ in range(4)]
            vec = [_make_replicas(kind, rng, n, combo, True) for _ in range(4)]
            backend = VectorBackend(require_lowering=True)
            ref_results = execute_batch(
                [s for s, _ in ref], compiled, crash_steps=masks
            )
            vec_results = execute_batch(
                [s for s, _ in vec], compiled, crash_steps=masks, backend=backend
            )
            assert backend.last_run["vectorized"] is True
            context = f"combo {combo}: {kind} on {params!r}"
            for (rs, rt), (vs, vt), rr, vr in zip(ref, vec, ref_results, vec_results):
                assert observable(rs) == observable(vs), context
                assert result_view(rr) == result_view(vr), context
                assert rt.changes == vt.changes, context


# ----------------------------------------------------------------------
# Edge cases, asserted identical across every backend
# ----------------------------------------------------------------------

class TestBackendEdgeCases:
    def _pair(self, n=4, t=2, k=2, replicas=1, tracked=False):
        build = lambda: [  # noqa: E731 - tiny local factory
            _anti_omega_replica(n, t, k, paper_accusation_statistic,
                                paper_timeout_policy, tracked)
            for _ in range(replicas)
        ]
        return build(), build()

    def _assert_identical(self, ref, new, ref_results, new_results):
        for (rs, _), (ns, _), rr, nr in zip(ref, new, ref_results, new_results):
            assert observable(rs) == observable(ns)
            assert result_view(rr) == result_view(nr)

    def test_batch_of_one(self, backend_name):
        compiled = CompiledSchedule(n=4, steps=[1, 2, 3, 4] * 60)
        ref, new = self._pair(replicas=1)
        self._assert_identical(
            ref,
            new,
            execute_batch([ref[0][0]], compiled),
            execute_batch([new[0][0]], compiled, backend=backend_name),
        )

    def test_zero_length_schedule(self, backend_name):
        compiled = CompiledSchedule(n=4, steps=[])
        ref, new = self._pair(replicas=2)
        ref_results = execute_batch([s for s, _ in ref], compiled)
        new_results = execute_batch(
            [s for s, _ in new], compiled, backend=backend_name
        )
        assert [r.steps_executed for r in new_results] == [0, 0]
        self._assert_identical(ref, new, ref_results, new_results)

    def test_crash_at_step_zero(self, backend_name):
        compiled = CompiledSchedule(n=4, steps=[1, 2, 3, 4] * 50)
        masks = [{1: 0}, {1: 0, 2: 0, 3: 0, 4: 0}]
        ref, new = self._pair(replicas=2)
        ref_results = execute_batch([s for s, _ in ref], compiled, crash_steps=masks)
        new_results = execute_batch(
            [s for s, _ in new], compiled, crash_steps=masks, backend=backend_name
        )
        assert new_results[1].steps_executed == 0
        self._assert_identical(ref, new, ref_results, new_results)

    def test_batch_not_a_multiple_of_the_column_chunk(self, backend_name):
        # Seven replicas over chunk-3 columns: 3 + 3 + 1.  For the reference
        # backend the chunk setting is irrelevant but the batch still runs.
        compiled = CompiledSchedule(n=4, steps=[2, 1, 4, 3] * 40)
        backend = (
            VectorBackend(chunk=3, require_lowering=True)
            if backend_name == "vector"
            else backend_name
        )
        ref, new = self._pair(replicas=7)
        ref_results = execute_batch([s for s, _ in ref], compiled)
        new_results = execute_batch([s for s, _ in new], compiled, backend=backend)
        if backend_name == "vector":
            assert backend.last_run["chunks"] == 3
        self._assert_identical(ref, new, ref_results, new_results)

    def test_mid_batch_single_writer_violation_raises_identically(self, backend_name):
        def build():
            registers = RegisterFile()
            # Pid 2's scratch register is owned by pid 1: the third write by
            # pid 2 is a single-writer violation mid-run.
            registers.declare(("idle-scratch", 2), initial=0, writer=1)
            automata = {pid: IdleAutomaton(pid, 3) for pid in range(1, 4)}
            return Simulator(n=3, automata=automata, registers=registers)

        compiled = CompiledSchedule(n=3, steps=[1, 3, 1, 2, 1])
        errors = []
        sims = []
        for spec in ("python", backend_name):
            sim = build()
            sims.append(sim)
            with pytest.raises(RegisterError) as excinfo:
                execute_batch([sim], compiled, backend=spec)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]
        assert "owned by process 1" in errors[0]
        assert observable(sims[0]) == observable(sims[1])

    def test_strict_mode_halted_step_raises_identically(self, backend_name):
        def build():
            automata = {
                pid: TrivialKSetAgreementAutomaton(pid, 3, t=1, k=2, input_value=pid)
                for pid in range(1, 4)
            }
            return Simulator(n=3, automata=automata, strict=True)

        compiled = CompiledSchedule(n=3, steps=[1, 2, 3] * 100)
        errors = []
        for spec in ("python", backend_name):
            with pytest.raises(SimulationError) as excinfo:
                execute_batch([build()], compiled, backend=spec)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]
        assert "was scheduled after its program returned" in errors[0]


# ----------------------------------------------------------------------
# Registry and diagnostics
# ----------------------------------------------------------------------

class TestBackendRegistry:
    def test_registered_names(self):
        assert set(backend_names()) >= {"python", "vector"}
        assert "python" in available_backends()

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ConfigurationError, match="available"):
            get_backend("banana")

    def test_instances_pass_through(self):
        backend = VectorBackend(chunk=7)
        assert get_backend(backend) is backend
        assert get_backend(None).name == "python"

    def test_new_backend_registers_for_free(self):
        class EchoBackend(ReferenceBackend):
            name = "echo-test"

        try:
            register_backend(EchoBackend())
            assert "echo-test" in backend_names()
            compiled = CompiledSchedule(n=3, steps=[1, 2, 3] * 10)
            ref, new = [], []
            for bucket in (ref, new):
                bucket.append(_poll_idle_replica(3, tracked=False))
            [r] = execute_batch([ref[0][0]], compiled)
            [n_] = execute_batch([new[0][0]], compiled, backend="echo-test")
            assert result_view(r) == result_view(n_)
            assert observable(ref[0][0]) == observable(new[0][0])
        finally:
            _BACKENDS.pop("echo-test", None)

    def test_python_backend_ensure_available_is_a_noop(self):
        get_backend("python").ensure_available()

    def test_base_backend_ensure_available_names_the_backend(self):
        class Ghost(Backend):
            name = "ghost"

            def available(self):
                return False

        with pytest.raises(ConfigurationError, match="ghost"):
            Ghost().ensure_available()


class TestVectorDiagnostics:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        if not get_backend("vector").available():
            pytest.skip("vector backend unavailable")

    def test_fallback_reports_reason(self):
        backend = VectorBackend()
        sim, _ = _fallback_replica(test_batch._token_program, 3, tracked=False)
        execute_batch([sim], CompiledSchedule(n=3, steps=[1, 2, 3]), backend=backend)
        assert backend.last_run["vectorized"] is False
        assert "no vector lowering registered" in backend.last_run["reason"]

    def test_require_lowering_raises_instead_of_falling_back(self):
        backend = VectorBackend(require_lowering=True)
        sim, _ = _fallback_replica(test_batch._token_program, 3, tracked=False)
        with pytest.raises(SimulationError, match="could not lower"):
            execute_batch(
                [sim], CompiledSchedule(n=3, steps=[1, 2, 3]), backend=backend
            )

    def test_vectorized_run_reports_batch_and_chunks(self):
        backend = VectorBackend(chunk=2)
        sims = [_poll_idle_replica(3, tracked=False)[0] for _ in range(5)]
        execute_batch(sims, CompiledSchedule(n=3, steps=[1, 2, 3] * 5), backend=backend)
        assert backend.last_run == {
            "vectorized": True,
            "reason": None,
            "chunks": 3,
            "batch": 5,
        }


# ----------------------------------------------------------------------
# The no-numpy environment (the [vector] extra not installed)
# ----------------------------------------------------------------------

class TestWithoutNumpy:
    @pytest.fixture(autouse=True)
    def _hide_numpy(self, monkeypatch):
        monkeypatch.setattr(vector_backend, "np", None)

    def test_vector_backend_reports_unavailable(self):
        assert get_backend("vector").available() is False
        assert "vector" not in available_backends()
        assert "vector" in backend_names()  # still listed, just not runnable

    def test_requesting_the_vector_backend_is_a_clear_configuration_error(self):
        sim, _ = _poll_idle_replica(3, tracked=False)
        with pytest.raises(ConfigurationError, match="numpy"):
            execute_batch(
                [sim], CompiledSchedule(n=3, steps=[1, 2, 3]), backend="vector"
            )

    def test_ensure_available_names_the_extra(self):
        with pytest.raises(ConfigurationError, match=r"\[vector\]"):
            get_backend("vector").ensure_available()

    def test_bench_defaults_skip_the_vector_lane(self):
        from repro.bench.trajectory import bench_kernel

        doc = bench_kernel(smoke=True, workloads=["bound-ops"])
        assert doc["config"]["backends"] == ["python"]
        assert "vector-batch-bare" not in doc["workloads"]["bound-ops"]
        assert "vector_vs_fast_stream" not in doc["headline"]

    def test_bench_explicit_vector_raises(self):
        from repro.bench.trajectory import bench_kernel

        with pytest.raises(ConfigurationError, match="numpy"):
            bench_kernel(smoke=True, workloads=["floor"], backends=["vector"])

    def test_regression_gate_skips_the_missing_vector_headline(self):
        from repro.bench.trajectory import compare_trajectories

        fresh_kernel = {"headline": {"batched_vs_fast_stream": 3.0}}
        baseline_kernel = {
            "headline": {"batched_vs_fast_stream": 3.0, "vector_vs_fast_stream": 30.0}
        }
        campaign = {"headline": {"batched_vs_stream": 1.0}, "payloads_identical": True}
        assert (
            compare_trajectories(fresh_kernel, campaign, baseline_kernel, campaign)
            == []
        )


class TestVectorHeadlineGate:
    def test_absolute_floor_fails_below_eight_x(self):
        from repro.bench.trajectory import compare_trajectories

        fresh_kernel = {
            "headline": {"batched_vs_fast_stream": 3.0, "vector_vs_fast_stream": 7.9}
        }
        baseline_kernel = {"headline": {"batched_vs_fast_stream": 3.0}}
        campaign = {"headline": {"batched_vs_stream": 1.0}, "payloads_identical": True}
        failures = compare_trajectories(
            fresh_kernel, campaign, baseline_kernel, campaign
        )
        assert any("absolute floor" in failure for failure in failures)

    def test_relative_gate_applies_within_one_mode(self):
        from repro.bench.trajectory import compare_trajectories

        fresh_kernel = {
            "config": {"smoke": False},
            "headline": {"vector_vs_fast_stream": 20.0},
        }
        baseline_kernel = {
            "config": {"smoke": False},
            "headline": {"vector_vs_fast_stream": 30.0},
        }
        campaign = {"headline": {}, "payloads_identical": True}
        failures = compare_trajectories(
            fresh_kernel, campaign, baseline_kernel, campaign
        )
        assert any("vector_vs_fast_stream regressed" in failure for failure in failures)

    def test_relative_gate_skipped_across_modes_but_floor_still_applies(self):
        # The vector ratio moves structurally with the horizon (fixed
        # compile/teardown cost amortizes over fewer smoke steps), so a
        # smoke measurement is not comparable to a full-mode baseline
        # within the tolerance band — only the absolute floor gates it.
        from repro.bench.trajectory import compare_trajectories

        baseline_kernel = {
            "config": {"smoke": False},
            "headline": {"vector_vs_fast_stream": 36.0},
        }
        campaign = {"headline": {}, "payloads_identical": True}
        smoke_ok = {
            "config": {"smoke": True},
            "headline": {"vector_vs_fast_stream": 24.0},
        }
        assert compare_trajectories(smoke_ok, campaign, baseline_kernel, campaign) == []
        smoke_below_floor = {
            "config": {"smoke": True},
            "headline": {"vector_vs_fast_stream": 6.0},
        }
        failures = compare_trajectories(
            smoke_below_floor, campaign, baseline_kernel, campaign
        )
        assert any("absolute floor" in failure for failure in failures)


# ----------------------------------------------------------------------
# Campaign integration: the backend parameter is engine-only
# ----------------------------------------------------------------------

class TestCampaignBackendParameter:
    def test_backend_is_a_measurement_key_not_a_schedule_key(self):
        from repro.campaign.runner import schedule_signature

        base = {"family": "set-timely", "n": 4, "seed": 3, "t": 2, "k": 2}
        assert schedule_signature(base) == schedule_signature(
            dict(base, backend="vector")
        )

    def test_detector_kind_payload_identical_across_backends(self):
        if not get_backend("vector").available():
            pytest.skip("vector backend unavailable")
        from repro.campaign.runner import run_detector_kind

        params = {
            "family": "set-timely",
            "n": 4,
            "p_set": [1],
            "q_set": [1, 2, 3],
            "bound": 3,
            "seed": 9,
            "crashes": [4],
            "t": 2,
            "k": 2,
            "horizon": 2000,
        }
        assert run_detector_kind(dict(params)) == run_detector_kind(
            dict(params, backend="vector")
        )

    def test_separation_probe_payload_identical_across_backends(self):
        if not get_backend("vector").available():
            pytest.skip("vector backend unavailable")
        from repro.campaign.runner import run_separation_probe_kind

        params = {
            "family": "set-timely",
            "n": 4,
            "p_set": [1],
            "q_set": [1, 2, 3],
            "bound": 3,
            "seed": 9,
            "crashes": [4],
            "t": 2,
            "k": 2,
            "horizon": 2000,
            "prefix_length": 400,
        }
        assert run_separation_probe_kind(dict(params)) == run_separation_probe_kind(
            dict(params, backend="vector")
        )
