"""``execute_multi_batch``: per-replica schedules, masks, snapshots, backends.

The multi-schedule sibling of the batch conformance suite.  Every registered
backend (including the ``auto`` planner) must produce results identical to
running each replica alone over its own schedule — same outputs, step counts,
halted sets and register arenas — with per-replica crash masks applied to the
replica's own buffer and checkpointed snapshots taken column-side on the
vector lane.  The edge cases ISSUE 8 pins are here too: a generation of one,
mixed lengths, crash at step 0, and the loud reference fallback for batches
the planner cannot lower.
"""

import logging
import random

import pytest
import test_backends
import test_batch
from repro.core.schedule import CompiledSchedule
from repro.errors import SimulationError
from repro.failure_detectors.base import FD_OUTPUT
from repro.runtime import backends as backends_module
from repro.runtime.backends import (
    MultiBatchResult,
    backend_names,
    get_backend,
    plan_backend_for_classes,
)
from repro.runtime.kernel import FAST, FAST_TRACED, execute_batch, execute_multi_batch
from repro.runtime.simulator import Simulator
from repro.runtime.vector_backend import VectorBackend
from repro.scenarios.spec import build_generator

observable = test_backends.observable
result_view = test_backends.result_view


@pytest.fixture(params=sorted(backend_names()))
def backend_name(request):
    """Every registered backend; unavailable ones skip (e.g. vector sans numpy)."""
    name = request.param
    if not get_backend(name).available():
        pytest.skip(f"backend {name!r} unavailable in this environment")
    return name


def _own_schedules(rng, params, n, replicas, horizon):
    """One compiled schedule per replica: mixed lengths, one zero-length row."""
    compileds = []
    for index in range(replicas):
        if index == replicas - 1:
            compileds.append(CompiledSchedule(n=n, steps=[]))
            continue
        length = max(1, horizon // (index + 1))
        source = build_generator(dict(params, seed=rng.randint(0, 10_000)))
        compileds.append(source.compile(length))
    return compileds


class TestMultiBatchConformance:
    def test_seeded_sweep_matches_solo_runs(self, backend_name):
        """Per-replica schedules + masks: identical to one solo run per replica."""
        backend = get_backend(backend_name)
        rng = random.Random(20260807)
        combos = 0
        while combos < 18:
            params, horizon = test_batch._random_combination(rng)
            n = build_generator(params).n
            if n < 3:
                continue
            kind = test_backends.SWEEP_KINDS[combos % len(test_backends.SWEEP_KINDS)]
            tracked = combos % 2 == 0
            replicas = 4
            compileds = _own_schedules(rng, params, n, replicas, horizon)
            masks = test_backends._random_masks(rng, replicas, n, horizon)
            ref = [
                test_backends._make_replicas(kind, rng, n, combos, tracked)
                for _ in range(replicas)
            ]
            new = [
                test_backends._make_replicas(kind, rng, n, combos, tracked)
                for _ in range(replicas)
            ]
            for index, (sim, _) in enumerate(ref):
                mask = [masks[index]] if masks is not None else None
                execute_batch([sim], compileds[index], crash_steps=mask)
            multi = execute_multi_batch(
                [sim for sim, _ in new],
                compileds,
                crash_steps=masks,
                backend=backend,
            )
            assert isinstance(multi, MultiBatchResult)
            assert multi.snapshots is None
            context = f"combo {combos}: {kind} on {params!r} horizon={horizon}"
            for (rs, rt), (ns, nt), nr in zip(ref, new, multi.results):
                assert observable(rs) == observable(ns), context
                assert nr.steps_executed == rs._step_index, context
                if tracked:
                    assert rt.changes == nt.changes, context
            combos += 1

    def test_snapshots_identical_across_backends(self, backend_name):
        """Checkpoint snapshots match the reference backend's segment walk."""
        rng = random.Random(7)
        n, t, k = 4, 2, 2
        lengths = [0, 1, 31, 173, 600, 601]
        compileds = [
            CompiledSchedule(
                n=n, steps=[rng.randrange(1, n + 1) for _ in range(length)]
            )
            for length in lengths
        ]

        def run(backend):
            sims = [
                test_backends._anti_omega_replica(
                    n,
                    t,
                    k,
                    test_backends.paper_accusation_statistic,
                    test_backends.paper_timeout_policy,
                    tracked=False,
                )[0]
                for _ in compileds
            ]
            return execute_multi_batch(
                sims,
                compileds,
                backend=backend,
                checkpoints=7,
                snapshot_keys=(FD_OUTPUT,),
            )

        reference = run("python")
        other = run(backend_name)
        assert other.snapshots == reference.snapshots
        assert [r.outputs for r in other.results] == [
            r.outputs for r in reference.results
        ]
        assert all(len(row) == 7 for row in other.snapshots)

    def test_snapshot_boundaries_match_prefix_runs(self):
        """Reference-lane snapshot ``i`` equals the outputs after (L*i)//cp steps."""
        rng = random.Random(3)
        n, t, k = 4, 2, 2
        length, checkpoints = 173, 5
        compiled = CompiledSchedule(
            n=n, steps=[rng.randrange(1, n + 1) for _ in range(length)]
        )

        def fresh():
            return test_backends._anti_omega_replica(
                n,
                t,
                k,
                test_backends.paper_accusation_statistic,
                test_backends.paper_timeout_policy,
                tracked=False,
            )[0]

        multi = execute_multi_batch(
            [fresh()],
            [compiled],
            backend="python",
            checkpoints=checkpoints,
            snapshot_keys=(FD_OUTPUT,),
        )
        for index in range(1, checkpoints + 1):
            bound = (length * index) // checkpoints
            solo = fresh()
            prefix = CompiledSchedule(n=n, steps=compiled.steps[:bound])
            execute_batch([solo], prefix)
            expected = {
                pid: {FD_OUTPUT: solo.output_of(pid, FD_OUTPUT)}
                for pid in range(1, n + 1)
            }
            assert multi.snapshots[0][index - 1] == expected


class TestMultiBatchEdgeCases:
    def _replica(self, n=3):
        return test_batch._fresh(n, test_batch.ALGORITHMS["token"], tracked=False)[0]

    def test_empty_batch(self, backend_name):
        result = execute_multi_batch([], [], backend=backend_name)
        assert result.results == [] and result.snapshots is None
        with_snapshots = execute_multi_batch(
            [], [], backend=backend_name, checkpoints=3
        )
        assert with_snapshots.snapshots == []

    def test_generation_of_one(self, backend_name):
        compiled = build_generator({"schedule": "round-robin", "n": 3}).compile(30)
        solo = self._replica()
        execute_batch([solo], compiled)
        fresh = self._replica()
        multi = execute_multi_batch([fresh], [compiled], backend=backend_name)
        assert len(multi.results) == 1
        assert multi.results[0].steps_executed == 30
        assert observable(solo) == observable(fresh)

    def test_crash_at_step_zero(self, backend_name):
        compiled = build_generator({"schedule": "round-robin", "n": 3}).compile(30)
        masks = [{1: 0}]
        solo = self._replica()
        execute_batch([solo], compiled, crash_steps=masks)
        fresh = self._replica()
        multi = execute_multi_batch(
            [fresh], [compiled], crash_steps=masks, backend=backend_name
        )
        assert observable(solo) == observable(fresh)
        assert multi.results[0].steps_executed < 30

    def test_max_steps_budgets_each_replica(self, backend_name):
        compileds = [
            build_generator({"schedule": "round-robin", "n": 3}).compile(50),
            build_generator({"schedule": "round-robin", "n": 3}).compile(10),
        ]
        multi = execute_multi_batch(
            [self._replica(), self._replica()],
            compileds,
            max_steps=20,
            backend=backend_name,
        )
        assert [r.steps_executed for r in multi.results] == [20, 10]

    def test_mismatched_counts_rejected(self):
        with pytest.raises(SimulationError, match="exactly one schedule per replica"):
            execute_multi_batch([self._replica()], [])

    def test_trace_policies_rejected(self):
        with pytest.raises(SimulationError, match="trace"):
            execute_multi_batch(
                [self._replica()],
                [build_generator({"schedule": "round-robin", "n": 3}).compile(10)],
                policy=FAST_TRACED,
            )

    def test_bad_checkpoints_rejected(self):
        with pytest.raises(SimulationError, match="checkpoints"):
            execute_multi_batch(
                [self._replica()],
                [build_generator({"schedule": "round-robin", "n": 3}).compile(10)],
                checkpoints=0,
            )

    def test_mixed_n_rejected(self):
        with pytest.raises(SimulationError, match="one"):
            execute_multi_batch(
                [self._replica(3), self._replica(4)],
                [
                    build_generator({"schedule": "round-robin", "n": 3}).compile(10),
                    build_generator({"schedule": "round-robin", "n": 4}).compile(10),
                ],
            )


class TestAutoPlanner:
    def test_lowered_batch_plans_vector(self):
        if not get_backend("vector").available():
            pytest.skip("numpy unavailable")
        from repro.failure_detectors.anti_omega import KAntiOmegaAutomaton

        chosen, reason = plan_backend_for_classes({KAntiOmegaAutomaton})
        assert chosen == "vector" and reason is None

    def test_unlowerable_batch_plans_python_with_reason(self):
        class Opaque:
            pass

        chosen, reason = plan_backend_for_classes({Opaque})
        assert chosen == "python"
        assert reason

    def test_auto_falls_back_loudly_and_records_plan(self, caplog):
        """An unlowerable multi-batch runs on the reference kernel, logged once."""
        backends_module._WARNED_FALLBACKS.clear()
        auto = get_backend("auto")
        compiled = build_generator({"schedule": "round-robin", "n": 3}).compile(30)
        solo = self_replica = test_batch._fresh(
            3, test_batch.ALGORITHMS["halting"], tracked=False
        )[0]
        with caplog.at_level(logging.WARNING, logger=backends_module._LOGGER.name):
            execute_multi_batch([self_replica], [compiled], backend="auto")
        assert auto.last_plan["backend"] == "python"
        assert auto.last_plan["reason"]
        if get_backend("vector").available():
            assert any(
                "falling back" in record.message for record in caplog.records
            )

    def test_auto_matches_python_on_lowered_generation(self):
        """Auto's vector plan is conformant on the anti-Ω generation shape."""
        rng = random.Random(5)
        n, t, k = 4, 2, 2
        compileds = [
            CompiledSchedule(
                n=n, steps=[rng.randrange(1, n + 1) for _ in range(length)]
            )
            for length in (0, 7, 64, 300)
        ]

        def run(backend):
            sims = [
                test_backends._anti_omega_replica(
                    n,
                    t,
                    k,
                    test_backends.paper_accusation_statistic,
                    test_backends.paper_timeout_policy,
                    tracked=False,
                )[0]
                for _ in compileds
            ]
            result = execute_multi_batch(sims, compileds, backend=backend)
            return [observable(sim) for sim in sims], [
                r.steps_executed for r in result.results
            ]

        assert run("auto") == run("python")


class TestVectorMultiBatchDiagnostics:
    def test_strict_vector_raises_on_observer_batches(self):
        if not get_backend("vector").available():
            pytest.skip("numpy unavailable")
        sim, _ = test_backends._anti_omega_replica(
            4,
            2,
            2,
            test_backends.paper_accusation_statistic,
            test_backends.paper_timeout_policy,
            tracked=True,
        )
        compiled = CompiledSchedule(n=4, steps=[1, 2, 3, 4])
        backend = VectorBackend(require_lowering=True)
        with pytest.raises(SimulationError, match="could not lower"):
            backend.run_multi_batch([sim], [compiled], FAST)

    def test_lenient_vector_falls_back_and_reports(self):
        if not get_backend("vector").available():
            pytest.skip("numpy unavailable")
        sim, _ = test_backends._anti_omega_replica(
            4,
            2,
            2,
            test_backends.paper_accusation_statistic,
            test_backends.paper_timeout_policy,
            tracked=True,
        )
        compiled = CompiledSchedule(n=4, steps=[1, 2, 3, 4])
        backend = VectorBackend()
        backend.run_multi_batch([sim], [compiled], FAST)
        assert backend.last_run["vectorized"] is False
        assert "observer" in backend.last_run["reason"]
