"""The slot-addressed operation pipeline: bind mechanics, prebind wiring, and
the bound-vs-unbound / arena-vs-dict equivalence contract.

The headline tests are the seeded randomized sweeps: 50+ random
(scenario family, crash pattern, n, t, k, seed) combinations running the real
Figure 2 detector three ways — name-addressed dispatch under the instrumented
policy (the dict-path reference), slot-bound dispatch through the bare loop,
and slot-bound dispatch through the batched loop — with outputs, halted sets,
step counts, register operation counts and tracker change sequences asserted
identical.  That contract is what lets the simulator prebind automata
unconditionally.
"""

import random

import pytest

from repro.agreement.problem import distinct_inputs
from repro.agreement.runner import solve_agreement
from repro.core.schedule import Schedule
from repro.errors import RegisterError, SimulationError
from repro.failure_detectors.anti_omega import (
    KAntiOmegaAutomaton,
    make_anti_omega_algorithm,
)
from repro.failure_detectors.base import make_detector_trackers
from repro.memory.registers import RegisterFile
from repro.runtime.automaton import (
    BoundReadOp,
    BoundWriteOp,
    FunctionAutomaton,
    IdleAutomaton,
    ProcessAutomaton,
    ReadOp,
    WriteOp,
    is_read_operation,
    validate_operation,
)
from repro.runtime.composition import ComposedAutomaton
from repro.runtime.kernel import (
    FAST,
    FAST_TRACED,
    INSTRUMENTED,
    align_replica_arenas,
    execute_batch,
)
from repro.runtime.observers import OutputTracker
from repro.runtime.simulator import Simulator, build_simulator, prebinding_disabled
from repro.scenarios.spec import build_generator
from repro.schedules.set_timely import SetTimelyGenerator
from repro.types import AgreementInstance


# ----------------------------------------------------------------------
# Bind mechanics
# ----------------------------------------------------------------------

class TestBindMechanics:
    def test_read_bind_interns_and_carries_the_slot(self):
        registers = RegisterFile()
        registers.declare(("Heartbeat", 2), initial=0, writer=2)
        bound = ReadOp(("Heartbeat", 2)).bind(registers)
        assert isinstance(bound, BoundReadOp)
        assert bound.register == ("Heartbeat", 2)
        assert bound.slot == registers.arena_view().slots[("Heartbeat", 2)]

    def test_write_bind_carries_the_value_and_stays_assignable(self):
        registers = RegisterFile()
        bound = WriteOp(("x",), 7).bind(registers)
        assert isinstance(bound, BoundWriteOp)
        assert bound.value == 7
        bound.value = 8  # the reusable-cell contract for prebound tables
        assert bound.value == 8

    def test_bind_on_undeclared_name_uses_declared_defaults_lazily(self):
        registers = RegisterFile()
        registers.declare(("owned",), initial=3, writer=1)
        bound = ReadOp(("owned",)).bind(registers)
        arena = registers.arena_view()
        assert arena.values[bound.slot] == 3
        assert arena.writers[bound.slot] == 1

    def test_bind_before_declare_survives_redeclaration(self):
        # Binding interns the slot; a later declare() resets the slot in
        # place, so the bound op still addresses the declared register.
        registers = RegisterFile()
        bound = ReadOp(("late",)).bind(registers)
        registers.declare(("late",), initial=41)
        assert registers.arena_view().values[bound.slot] == 41

    def test_validate_operation_accepts_bound_ops(self):
        registers = RegisterFile()
        read = ReadOp(("r",)).bind(registers)
        write = WriteOp(("r",), 1).bind(registers)
        assert validate_operation(read) is read
        assert validate_operation(write) is write
        assert is_read_operation(read) and not is_read_operation(write)

    def test_unbound_ops_still_compare_by_value(self):
        assert ReadOp("r") == ReadOp("r")
        assert WriteOp("r", 1) == WriteOp("r", 1)
        assert ReadOp("r") != ReadOp("s")
        assert WriteOp("r", 1) != WriteOp("r", 2)
        assert hash(ReadOp("r")) == hash(ReadOp("r"))


# ----------------------------------------------------------------------
# Prebind wiring
# ----------------------------------------------------------------------

class TestPrebindWiring:
    def test_simulator_prebinds_automata_at_construction(self):
        simulator = build_simulator(2, lambda pid: IdleAutomaton(pid, 2))
        for pid in (1, 2):
            assert simulator.automaton(pid)._bound_scratch is not None

    def test_prebind_flag_and_context_manager_disable_binding(self):
        bare = build_simulator(2, lambda pid: IdleAutomaton(pid, 2), prebind=False)
        assert bare.automaton(1)._bound_scratch is None
        with prebinding_disabled():
            context = build_simulator(2, lambda pid: IdleAutomaton(pid, 2))
        assert context.automaton(1)._bound_scratch is None
        # The switch is scoped: construction outside the context binds again.
        rebound = build_simulator(2, lambda pid: IdleAutomaton(pid, 2))
        assert rebound.automaton(1)._bound_scratch is not None

    def test_reused_automaton_is_unbound_when_prebinding_is_disabled(self):
        # An automaton bound to simulator A's register file must not leak
        # stale slots into simulator B when B asked for name-addressed
        # dispatch: constructing B unbinds it.
        automata = {pid: IdleAutomaton(pid, 2) for pid in (1, 2)}
        first = Simulator(n=2, automata=automata)
        assert automata[1]._bound_scratch is not None
        second = Simulator(n=2, automata=automata, prebind=False)
        assert automata[1]._bound_scratch is None
        result = second.run_fast(Schedule(steps=(1, 2, 1), n=2))
        assert result.steps_executed == 3
        assert second.registers.peek(("idle-scratch", 1)) == 2
        assert first.registers.total_writes() == 0  # nothing leaked into A

    def test_reused_detector_is_unbound_when_prebinding_is_disabled(self):
        automata = make_anti_omega_algorithm(n=3, t=1, k=1)
        registers = RegisterFile()
        KAntiOmegaAutomaton.declare_registers(registers, n=3, k=1)
        Simulator(n=3, automata=automata, registers=registers)
        assert automata[1]._heartbeat_write is not None
        fresh = Simulator(n=3, automata=automata, prebind=False)
        assert automata[1]._heartbeat_write is None
        generator = automata[1].program(automata[1].context())
        assert isinstance(generator.send(None), ReadOp)
        assert fresh.registers.total_reads() == 0

    def test_stale_binding_to_another_simulator_fails_loudly(self):
        # Constructing a second simulator over the same automata rebinds
        # their tables; the first simulator must refuse to start programs
        # whose ops carry the other file's slots instead of silently
        # aliasing registers.
        automata = {pid: IdleAutomaton(pid, 2) for pid in (1, 2)}
        first = Simulator(n=2, automata=automata)
        second = Simulator(n=2, automata=automata)
        with pytest.raises(SimulationError, match="pre-bound to a different"):
            first.run_fast(Schedule(steps=(1,), n=2))
        assert first.registers.total_writes() == 0  # nothing executed
        # The currently bound simulator runs fine, and rebinding heals the
        # first one.
        second.run_fast(Schedule(steps=(1, 2), n=2))
        for automaton in automata.values():
            automaton.prebind(first.registers)
            automaton._prebound_registers = first.registers
        first.run_fast(Schedule(steps=(1, 2), n=2))
        assert first.registers.total_writes() == 2

    def test_trivial_agreement_interns_identical_namespaces_bound_and_unbound(self):
        from repro.agreement.trivial import TrivialKSetAgreementAutomaton

        def factory(pid):
            return TrivialKSetAgreementAutomaton(
                pid=pid, n=4, t=1, k=2, input_value=pid * 100
            )

        schedule = Schedule(steps=(1, 2, 3, 4) * 6, n=4)
        bound_sim = build_simulator(4, factory)
        unbound_sim = build_simulator(4, factory, prebind=False)
        bound = bound_sim.run_fast(schedule)
        unbound = unbound_sim.run_fast(schedule)
        assert bound.outputs == unbound.outputs
        assert sorted(map(repr, bound_sim.registers.names())) == sorted(
            map(repr, unbound_sim.registers.names())
        )
        assert bound_sim.registers.snapshot_values() == unbound_sim.registers.snapshot_values()

    def test_idle_automaton_runs_identically_bound_and_unbound(self):
        schedule = Schedule(steps=(1, 2, 1, 1, 2) * 6, n=2)
        bound_sim = build_simulator(2, lambda pid: IdleAutomaton(pid, 2))
        unbound_sim = build_simulator(2, lambda pid: IdleAutomaton(pid, 2), prebind=False)
        bound = bound_sim.run_fast(schedule)
        unbound = unbound_sim.run_fast(schedule)
        assert bound.steps_executed == unbound.steps_executed
        assert bound_sim.registers.snapshot_values() == unbound_sim.registers.snapshot_values()
        assert bound_sim.registers.total_writes() == unbound_sim.registers.total_writes()

    def test_composition_forwards_prebind_to_components(self):
        composed = ComposedAutomaton(
            pid=1,
            n=2,
            components=[
                ("a", IdleAutomaton(1, 2)),
                ("b", IdleAutomaton(1, 2)),
            ],
        )
        registers = RegisterFile()
        composed.prebind(registers)
        for _, component in composed._components:
            assert component._bound_scratch is not None

    def test_detector_yields_bound_ops_after_prebind(self):
        registers = RegisterFile()
        KAntiOmegaAutomaton.declare_registers(registers, n=3, k=1)
        automaton = KAntiOmegaAutomaton(pid=1, n=3, t=1, k=1)
        automaton.prebind(registers)
        generator = automaton.program(automaton.context())
        op = generator.send(None)
        assert isinstance(op, BoundReadOp)

    def test_step_api_executes_bound_ops_by_name(self):
        def program(automaton, ctx):
            read = ReadOp(("r",))
            write = WriteOp(("r",), 0)
            bound_read = None
            bound_write = None
            while True:
                if bound_read is None:
                    bound_read = automaton.bound_read
                    bound_write = automaton.bound_write
                value = yield bound_read
                bound_write.value = (value or 0) + 1
                yield bound_write

        simulator = build_simulator(1, lambda pid: FunctionAutomaton(pid, 1, program))
        automaton = simulator.automaton(1)
        automaton.bound_read = ReadOp(("r",)).bind(simulator.registers)
        automaton.bound_write = WriteOp(("r",), 0).bind(simulator.registers)
        for _ in range(6):
            simulator.step(1)
        assert simulator.registers.peek(("r",)) == 3
        assert simulator.registers.resolve(("r",)).read_count == 3


class _OwnedWriterAutomaton(ProcessAutomaton):
    """Prebinds a write to a register owned by process 1 — every other pid
    must trip the single-writer check from the slot-dispatch fast path."""

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self._write = None

    def prebind(self, registers):
        self._write = WriteOp(("owned", 1), 0).bind(registers)

    def program(self, ctx):
        count = 0
        while True:
            count += 1
            self._write.value = (self.pid, count)
            yield self._write


class TestBoundSingleWriterViolation:
    def _simulator(self):
        simulator = build_simulator(2, lambda pid: _OwnedWriterAutomaton(pid, 2))
        simulator.registers.declare(("owned", 1), initial=0, writer=1)
        return simulator

    @pytest.mark.parametrize("policy", [INSTRUMENTED, FAST, FAST_TRACED], ids=lambda p: p.name)
    def test_violation_raises_canonical_error_with_exact_accounting(self, policy):
        simulator = self._simulator()
        schedule = Schedule(steps=(1, 1, 2, 1), n=2)
        with pytest.raises(RegisterError, match="owned by process 1"):
            simulator.run_with_policy(schedule, policy)
        assert simulator.step_index == 2
        assert simulator.steps_taken(1) == 2 and simulator.steps_taken(2) == 0
        assert simulator.registers.peek(("owned", 1)) == (1, 2)
        assert simulator.registers.resolve(("owned", 1)).write_count == 2

    def test_violation_in_batched_loop(self):
        from repro.core.schedule import CompiledSchedule

        simulator = self._simulator()
        with pytest.raises(RegisterError, match="owned by process 1"):
            execute_batch([simulator], CompiledSchedule(n=2, steps=[1, 1, 2, 1]))
        assert simulator.step_index == 2
        assert simulator.registers.peek(("owned", 1)) == (1, 2)


# ----------------------------------------------------------------------
# Batched replicas: aligned arenas over one shared slot map
# ----------------------------------------------------------------------

class TestAlignedReplicaArenas:
    def _replicas(self, count):
        def factory(pid):
            return KAntiOmegaAutomaton(pid=pid, n=3, t=1, k=1)

        replicas = []
        for _ in range(count):
            registers = RegisterFile()
            KAntiOmegaAutomaton.declare_registers(registers, n=3, k=1)
            replicas.append(build_simulator(3, factory, registers=registers))
        return replicas

    def test_identical_replicas_share_one_slot_map(self):
        replicas = self._replicas(3)
        shared = align_replica_arenas(replicas)
        assert shared is not None
        for simulator in replicas:
            assert simulator.registers.arena_view().slots == shared

    def test_alignment_survives_batched_execution(self):
        replicas = self._replicas(3)
        generator = build_generator({"schedule": "round-robin", "n": 3})
        execute_batch(replicas, generator.compile(120))
        maps = [dict(sim.registers.arena_view().slots) for sim in replicas]
        assert maps[0] == maps[1] == maps[2]
        # Identical replicas over one schedule produce identical value columns.
        columns = [list(sim.registers.arena_view().values) for sim in replicas]
        assert columns[0] == columns[1] == columns[2]

    def test_prefix_replicas_are_completed_to_the_canonical_map(self):
        # One replica ran ahead and lazily interned extra registers; the
        # others get the tail interned (with their own defaults) and align.
        ahead, behind = self._replicas(2)
        ahead.registers.resolve(("extra", 1))
        ahead.registers.resolve(("extra", 2))
        shared = align_replica_arenas([ahead, behind])
        assert shared is not None
        assert behind.registers.exists(("extra", 2))
        assert behind.registers.arena_view().slots == shared

    def test_divergent_interning_orders_fail_without_polluting_arenas(self):
        left, right = self._replicas(2)
        left.registers.resolve(("only", "left"))
        right.registers.resolve(("only", "right"))
        # Divergent orders cannot be renumbered into one map, and neither
        # replica's namespace is touched in the attempt.
        assert align_replica_arenas([left, right]) is None
        assert not left.registers.exists(("only", "right"))
        assert not right.registers.exists(("only", "left"))


# ----------------------------------------------------------------------
# Randomized equivalence sweeps (the bound/arena vs. dict contract)
# ----------------------------------------------------------------------

def _random_combination(rng):
    """One random (family params, t, k, horizon) combination for the sweep."""
    n = rng.randint(2, 5)
    family = rng.choice(
        ["round-robin", "random", "set-timely", "eventually-synchronous",
         "carrier-rotation", "crash-churn", "alternating-epochs", "spliced-adversary"]
    )
    seed = rng.randint(0, 10_000)
    params = {"schedule": family, "n": n, "seed": seed}
    crashed = rng.sample(range(1, n + 1), rng.randint(0, max(n - 2, 0)))
    if family == "set-timely":
        correct = sorted(set(range(1, n + 1)) - set(crashed))
        p_size = rng.randint(1, max(len(correct) - 1, 1))
        params["p_set"] = correct[:p_size]
        params["q_set"] = list(range(1, n + 1))
        params["bound"] = rng.randint(2, 4)
    elif family in ("carrier-rotation", "spliced-adversary"):
        correct = sorted(set(range(1, n + 1)) - set(crashed))
        params["carriers"] = correct[: rng.randint(1, len(correct))]
    elif family == "crash-churn":
        params["period"] = rng.randint(8, 64)
        params["outage"] = rng.randint(0, params["period"])
        params["churn"] = rng.randint(0, 2)
    elif family == "alternating-epochs":
        params["sync_epoch"] = rng.randint(4, 32)
        params["async_epoch"] = rng.randint(4, 32)
        params["epoch_growth"] = rng.choice([0, 0, 3])
    params["crashes"] = crashed
    t = rng.randint(1, n - 1)
    k = rng.randint(1, n - 1)
    horizon = rng.randint(60, 260)
    return params, t, k, horizon


def _detector_simulator(n, t, k, prebind):
    registers = RegisterFile()
    KAntiOmegaAutomaton.declare_registers(registers, n=n, k=k)
    automata = make_anti_omega_algorithm(n=n, t=t, k=k)
    simulator = Simulator(n=n, automata=automata, registers=registers, prebind=prebind)
    fd_tracker, winner_tracker = make_detector_trackers()
    simulator.add_observer(fd_tracker)
    simulator.add_observer(winner_tracker)
    return simulator, fd_tracker, winner_tracker


def _observable_state(simulator, result, n):
    return (
        result.outputs,
        result.steps_executed,
        result.halted_processes,
        simulator.registers.total_reads(),
        simulator.registers.total_writes(),
        [simulator.steps_taken(pid) for pid in range(1, n + 1)],
    )


class TestBoundVersusDictEquivalenceSweep:
    def test_fifty_random_detector_scenarios_agree_across_dispatch_paths(self):
        rng = random.Random(4202607)
        combos = 0
        while combos < 52:
            params, t, k, horizon = _random_combination(rng)
            generator = build_generator(params)
            n = generator.n
            compiled = build_generator(params).compile(horizon)
            context = f"combo {combos}: {params!r} t={t} k={k} horizon={horizon}"

            # Reference: name-addressed dict dispatch, instrumented policy.
            dict_sim, dict_fd, dict_winner = _detector_simulator(n, t, k, prebind=False)
            reference = dict_sim.run(compiled)
            # Slot-bound dispatch through the bare loop.
            bound_sim, bound_fd, bound_winner = _detector_simulator(n, t, k, prebind=True)
            bound = bound_sim.run_fast(compiled)
            # Slot-bound dispatch through the batched loop (two replicas).
            batch_sims = []
            batch_trackers = []
            for _ in range(2):
                simulator, fd_tracker, winner_tracker = _detector_simulator(
                    n, t, k, prebind=True
                )
                batch_sims.append(simulator)
                batch_trackers.append((fd_tracker, winner_tracker))
            batch_results = execute_batch(batch_sims, compiled)

            expected = _observable_state(dict_sim, reference, n)
            assert _observable_state(bound_sim, bound, n) == expected, context
            assert bound_fd.changes == dict_fd.changes, context
            assert bound_winner.changes == dict_winner.changes, context
            for simulator, result, (fd_tracker, winner_tracker) in zip(
                batch_sims, batch_results, batch_trackers
            ):
                assert _observable_state(simulator, result, n) == expected, context
                assert fd_tracker.changes == dict_fd.changes, context
                assert winner_tracker.changes == dict_winner.changes, context
            combos += 1

    def test_agreement_stack_agrees_bound_and_unbound(self):
        # The composed detector + agreement stack (prebind forwarded through
        # the composition) against the dict path, over certified scenarios.
        rng = random.Random(97531)
        for _ in range(6):
            n = rng.randint(3, 5)
            t = rng.randint(2, n - 1)
            k = rng.randint(1, t)
            seed = rng.randint(0, 10_000)
            max_steps = rng.randint(800, 1_600)
            problem = AgreementInstance(t=t, k=k, n=n)

            def report():
                generator = SetTimelyGenerator(
                    n=n,
                    p_set=set(range(1, k + 1)),
                    q_set=set(range(1, t + 2)),
                    bound=3,
                    seed=seed,
                )
                outcome = solve_agreement(
                    problem, distinct_inputs(n), generator, max_steps=max_steps
                )
                return (
                    outcome.decisions,
                    outcome.steps_executed,
                    outcome.verdict.satisfied,
                    outcome.verdict.valid,
                )

            bound = report()
            with prebinding_disabled():
                unbound = report()
            assert bound == unbound, f"n={n} t={t} k={k} seed={seed}"
