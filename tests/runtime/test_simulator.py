"""Tests for the step-level simulator and the automaton protocol."""

import pytest

from repro.core.schedule import InfiniteSchedule, Schedule
from repro.errors import SimulationError
from repro.memory.registers import RegisterFile
from repro.runtime.automaton import (
    FunctionAutomaton,
    IdleAutomaton,
    ProcessAutomaton,
    ReadOp,
    WriteOp,
    validate_operation,
)
from repro.runtime.simulator import Simulator, build_simulator


class PingPong(ProcessAutomaton):
    """Writes its pid, reads the other's register, publishes what it saw."""

    def program(self, ctx):
        other = 1 if self.pid == 2 else 2
        yield WriteOp(("reg", self.pid), self.pid)
        seen = yield ReadOp(("reg", other))
        self.publish("seen", seen)
        return seen


class TestAutomatonProtocol:
    def test_validate_operation_accepts_ops(self):
        assert validate_operation(ReadOp("r")) == ReadOp("r")
        assert validate_operation(WriteOp("r", 1)) == WriteOp("r", 1)

    def test_validate_operation_rejects_other_values(self):
        with pytest.raises(SimulationError):
            validate_operation(42)

    def test_bad_pid_rejected(self):
        with pytest.raises(SimulationError):
            IdleAutomaton(pid=5, n=3)

    def test_function_automaton(self):
        def program(automaton, ctx):
            value = yield ReadOp("x")
            automaton.publish("got", value)

        automaton = FunctionAutomaton(pid=1, n=1, function=program)
        simulator = Simulator(n=1, automata={1: automaton})
        simulator.registers.write("x", 99)
        simulator.run(Schedule(steps=(1, 1), n=1))
        assert automaton.output("got") == 99


class TestSimulatorExecution:
    def test_one_operation_per_step(self):
        simulator = Simulator(n=2, automata={1: PingPong(1, 2), 2: PingPong(2, 2)})
        # Process 1 writes, process 2 writes, then both read each other.
        simulator.run(Schedule(steps=(1, 2, 1, 2, 1, 2), n=2))
        assert simulator.output_of(1, "seen") == 2
        assert simulator.output_of(2, "seen") == 1
        assert simulator.steps_taken(1) == 3
        assert simulator.halted(1) and simulator.halted(2)

    def test_interleaving_determines_reads(self):
        simulator = Simulator(n=2, automata={1: PingPong(1, 2), 2: PingPong(2, 2)})
        # Process 1 runs entirely before process 2 ever writes.
        simulator.run(Schedule(steps=(1, 1, 1, 2, 2, 2), n=2))
        assert simulator.output_of(1, "seen") is None
        assert simulator.output_of(2, "seen") == 1

    def test_halted_process_steps_are_noops_by_default(self):
        simulator = Simulator(n=1, automata={1: PingPong(1, 1)})
        result = simulator.run(Schedule(steps=(1,) * 10, n=1))
        assert result.steps_executed == 10
        assert simulator.halted(1)

    def test_strict_mode_rejects_scheduling_halted_process(self):
        simulator = Simulator(n=1, automata={1: PingPong(1, 1)}, strict=True)
        with pytest.raises(SimulationError):
            simulator.run(Schedule(steps=(1,) * 10, n=1))

    def test_missing_automaton_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(n=2, automata={1: IdleAutomaton(1, 2)})

    def test_unknown_process_in_schedule_rejected(self):
        simulator = Simulator(n=2, automata={1: IdleAutomaton(1, 2), 2: IdleAutomaton(2, 2)})
        with pytest.raises(SimulationError):
            simulator.run(Schedule(steps=(1, 2), n=3))

    def test_trace_matches_executed_schedule(self):
        simulator = build_simulator(3, lambda pid: IdleAutomaton(pid, 3))
        schedule = Schedule(steps=(3, 1, 2, 2), n=3)
        simulator.run(schedule)
        assert simulator.trace().steps == schedule.steps

    def test_stop_condition(self):
        simulator = build_simulator(2, lambda pid: IdleAutomaton(pid, 2))
        result = simulator.run(
            Schedule(steps=(1, 2) * 50, n=2),
            stop_condition=lambda step, sim: step >= 7,
        )
        assert result.stopped_early
        assert result.steps_executed == 7

    def test_infinite_schedule_needs_budget(self):
        simulator = build_simulator(2, lambda pid: IdleAutomaton(pid, 2))
        infinite = InfiniteSchedule(n=2, step_fn=lambda index: 1 + index % 2)
        with pytest.raises(SimulationError):
            simulator.run(infinite)
        result = simulator.run(infinite, max_steps=25)
        assert result.steps_executed == 25

    def test_observers_called_per_step(self):
        seen = []
        simulator = build_simulator(2, lambda pid: IdleAutomaton(pid, 2))
        simulator.add_observer(lambda step, pid, sim: seen.append((step, pid)))
        simulator.run(Schedule(steps=(1, 2, 1), n=2))
        assert seen == [(1, 1), (2, 2), (3, 1)]

    def test_shared_register_file_is_reused(self):
        registers = RegisterFile()
        registers.declare("x", initial=5)
        simulator = Simulator(n=1, automata={1: IdleAutomaton(1, 1)}, registers=registers)
        assert simulator.registers.peek("x") == 5

    def test_run_result_outputs(self):
        simulator = Simulator(n=2, automata={1: PingPong(1, 2), 2: PingPong(2, 2)})
        result = simulator.run(Schedule(steps=(1, 2, 1, 2, 1, 2), n=2))
        assert result.outputs[1]["seen"] == 2
        assert result.halted_processes == [1, 2]
