"""The execution kernel: policies, observer capabilities, run/run_fast equivalence.

The headline test is the seeded randomized sweep: ~50 random
(scenario family, crash pattern, n, seed) combinations, each executed under
the instrumented policy and under the fast policy on fresh simulators, with
outputs, halted sets, step counts, register operation counts and tracker
change sequences asserted identical.  That is the contract that lets every
harness switch policies freely.
"""

import random

import pytest

from repro.errors import RegisterError, SimulationError
from repro.memory.registers import RegisterFile
from repro.runtime.automaton import FunctionAutomaton, ReadOp, WriteOp
from repro.runtime.kernel import (
    EVERY_STEP,
    FAST,
    FAST_TRACED,
    INSTRUMENTED,
    ON_PUBLISH,
    ExecutionPolicy,
    execute_batch,
    trace_sampling,
)
from repro.runtime.observers import OutputTracker
from repro.runtime.simulator import Simulator, build_simulator
from repro.core.schedule import Schedule
from repro.scenarios.spec import build_generator


def _token_program(automaton, ctx):
    """A cheap program that reads, writes and publishes — all paths exercised."""
    total = 0
    while True:
        value = yield ReadOp(("token",))
        current = value or 0
        yield WriteOp(("token",), current + 1)
        total += current
        if total % 3 == 0:
            automaton.publish("total", total)


def _halting_program(automaton, ctx):
    for round_index in range(5):
        value = yield ReadOp(("token",))
        automaton.publish("last", value)
        yield WriteOp(("scratch", automaton.pid), round_index)
    return "done"


def _fresh(n, program=_token_program):
    simulator = build_simulator(n, lambda pid: FunctionAutomaton(pid, n, program))
    tracker = OutputTracker(key="total" if program is _token_program else "last")
    simulator.add_observer(tracker)
    return simulator, tracker


class TestPolicies:
    def test_builtin_policy_shapes(self):
        assert INSTRUMENTED.sampling == EVERY_STEP and INSTRUMENTED.collect_trace
        assert FAST.sampling == ON_PUBLISH and not FAST.collect_trace
        assert FAST_TRACED.collect_trace and FAST_TRACED.trace_stride == 1

    def test_trace_sampling_policy_validation(self):
        assert trace_sampling(10).trace_stride == 10
        with pytest.raises(SimulationError):
            trace_sampling(0)
        with pytest.raises(SimulationError):
            ExecutionPolicy(name="bogus", sampling="sometimes", collect_trace=False)

    def test_trace_sampling_records_every_stride_th_step(self):
        schedule = Schedule(steps=(1, 2) * 30, n=2)
        simulator, _ = _fresh(2)
        result = simulator.run_with_policy(schedule, trace_sampling(10))
        assert result.steps_executed == 60
        # Steps 1, 11, 21, ... of the run are recorded: six samples.
        assert len(result.executed_schedule.steps) == 6
        assert simulator.trace().steps == result.executed_schedule.steps

    def test_policies_execute_identical_steps(self):
        schedule = Schedule(steps=(1, 2, 1, 1, 2) * 8, n=2)
        results = {}
        for name, policy in {
            "instrumented": INSTRUMENTED,
            "fast": FAST,
            "sampled": trace_sampling(7),
        }.items():
            simulator, tracker = _fresh(2)
            result = simulator.run_with_policy(schedule, policy)
            results[name] = (result.outputs, result.steps_executed, tracker.changes)
        assert results["instrumented"] == results["fast"] == results["sampled"]


class TestObserverCapabilities:
    def test_every_step_observer_rejected_by_fast_policy(self):
        simulator, _ = _fresh(2)
        seen = []
        simulator.add_observer(lambda step, pid, sim: seen.append(step))
        with pytest.raises(SimulationError, match="every_step"):
            simulator.run_fast(Schedule(steps=(1, 2), n=2))
        # Nothing executed: the check happens before the first step.
        assert simulator.step_index == 0 and not seen

    def test_every_step_observer_fine_under_instrumented_policy(self):
        simulator, _ = _fresh(2)
        seen = []
        simulator.add_observer(lambda step, pid, sim: seen.append(step))
        simulator.run(Schedule(steps=(1, 2, 1), n=2))
        assert seen == [1, 2, 3]

    def test_explicit_capability_overrides_default(self):
        simulator, _ = _fresh(2)
        sampled = []
        simulator.add_observer(
            lambda step, pid, sim: sampled.append((step, pid)), capability="on_publish"
        )
        result = simulator.run_fast(Schedule(steps=(1, 2, 1, 2), n=2))
        assert result.steps_executed == 4
        assert sampled  # the first sampled step of each process at minimum

    def test_output_tracker_declares_on_publish(self):
        assert OutputTracker.observer_capability == "on_publish"

    def test_unknown_capability_rejected_at_registration(self):
        simulator, _ = _fresh(1)
        with pytest.raises(SimulationError, match="unknown observer capability"):
            simulator.add_observer(lambda step, pid, sim: None, capability="weekly")


# ----------------------------------------------------------------------
# Hot-loop register paths: lazy creation and single-writer enforcement
# ----------------------------------------------------------------------

#: Every execution-loop flavour the kernel can select.  ``fast`` without
#: observers routes to the bare loop, so the same policy is exercised twice:
#: with a tracker attached (general loop) and without (bare loop).
ALL_POLICIES = {
    "instrumented": INSTRUMENTED,
    "fast": FAST,
    "fast+trace": FAST_TRACED,
}


def _undeclared_toucher(automaton, ctx):
    """First touch of two undeclared registers happens inside the hot loop."""
    value = yield ReadOp(("ghost", automaton.pid))
    yield WriteOp(("phantom", automaton.pid), (value, "written"))
    automaton.publish("saw", value)
    while True:
        yield ReadOp(("ghost", automaton.pid))


class TestFastOpsMissPath:
    @pytest.mark.parametrize("policy_name", sorted(ALL_POLICIES))
    @pytest.mark.parametrize("tracked", [True, False], ids=["tracked", "bare"])
    def test_first_touch_of_undeclared_register_inside_execute(self, policy_name, tracked):
        policy = ALL_POLICIES[policy_name]
        simulator = build_simulator(
            2, lambda pid: FunctionAutomaton(pid, 2, _undeclared_toucher)
        )
        if tracked:
            simulator.add_observer(OutputTracker(key="saw"))
        registers = simulator.registers
        assert not registers.exists(("ghost", 1))
        simulator.run_with_policy(Schedule(steps=(1, 1, 2, 2, 1), n=2), policy)
        # The registers sprang into existence inside the loop, unowned and
        # with the undeclared default of None, and every access was counted.
        assert registers.exists(("ghost", 1)) and registers.exists(("phantom", 1))
        assert registers.resolve(("ghost", 1)).writer is None
        assert registers.resolve(("ghost", 1)).read_count == 2
        assert registers.resolve(("phantom", 1)).write_count == 1
        assert registers.peek(("phantom", 1)) == (None, "written")
        assert simulator.output_of(1, "saw") is None
        assert registers.resolve(("ghost", 2)).read_count == 1

    @pytest.mark.parametrize("policy_name", sorted(ALL_POLICIES))
    def test_declared_initial_value_served_through_hot_loop(self, policy_name):
        policy = ALL_POLICIES[policy_name]

        def reader(automaton, ctx):
            value = yield ReadOp(("seeded",))
            automaton.publish("got", value)
            while True:
                yield ReadOp(("seeded",))

        simulator = build_simulator(1, lambda pid: FunctionAutomaton(pid, 1, reader))
        registers = simulator.registers
        registers.declare(("seeded",), initial=41)
        simulator.run_with_policy(Schedule(steps=(1, 1), n=1), policy)
        assert simulator.output_of(1, "got") == 41
        assert registers.resolve(("seeded",)).read_count == 2


def _owned_writer(automaton, ctx):
    """Every process writes the register owned by process 1."""
    count = 0
    while True:
        count += 1
        yield WriteOp(("owned", 1), (automaton.pid, count))


class TestSingleWriterViolationInHotLoop:
    def _violating_simulator(self, tracked):
        simulator = build_simulator(
            2, lambda pid: FunctionAutomaton(pid, 2, _owned_writer)
        )
        simulator.registers.declare(("owned", 1), initial=0, writer=1)
        if tracked:
            simulator.add_observer(OutputTracker(key="never"))
        return simulator

    @pytest.mark.parametrize("policy_name", sorted(ALL_POLICIES))
    @pytest.mark.parametrize("tracked", [True, False], ids=["tracked", "bare"])
    def test_violation_raises_canonical_error_mid_run(self, policy_name, tracked):
        policy = ALL_POLICIES[policy_name]
        simulator = self._violating_simulator(tracked)
        schedule = Schedule(steps=(1, 1, 2, 1), n=2)
        with pytest.raises(RegisterError, match="owned by process 1"):
            simulator.run_with_policy(schedule, policy)
        # Exact partial accounting: the two completed steps count, the
        # violating third step does not, and its write never landed.
        assert simulator.step_index == 2
        assert simulator.steps_taken(1) == 2 and simulator.steps_taken(2) == 0
        assert simulator.registers.peek(("owned", 1)) == (1, 2)
        assert simulator.registers.resolve(("owned", 1)).write_count == 2

    def test_violation_in_batched_full_buffer_loop(self):
        from repro.core.schedule import CompiledSchedule

        compiled = CompiledSchedule(n=2, steps=[1, 1, 2, 1])
        healthy = self._violating_simulator(tracked=False)
        with pytest.raises(RegisterError, match="owned by process 1"):
            execute_batch([healthy], compiled)
        assert healthy.step_index == 2
        assert healthy.steps_taken(1) == 2 and healthy.steps_taken(2) == 0
        assert healthy.registers.peek(("owned", 1)) == (1, 2)


# ----------------------------------------------------------------------
# Randomized equivalence sweep (the run/run_fast contract)
# ----------------------------------------------------------------------

def _random_combination(rng):
    """One random (family params, n, horizon) combination for the sweep."""
    n = rng.randint(2, 6)
    family = rng.choice(
        ["round-robin", "random", "set-timely", "eventually-synchronous",
         "carrier-rotation", "crash-churn", "alternating-epochs", "spliced-adversary"]
    )
    seed = rng.randint(0, 10_000)
    params = {"schedule": family, "n": n, "seed": seed}
    # A random initial-crash pattern, kept small enough for every family's
    # liveness constraints (at least two processes stay correct).
    crashed = rng.sample(range(1, n + 1), rng.randint(0, max(n - 2, 0)))
    if family == "set-timely":
        correct = sorted(set(range(1, n + 1)) - set(crashed))
        p_size = rng.randint(1, max(len(correct) - 1, 1))
        params["p_set"] = correct[:p_size]
        params["q_set"] = list(range(1, n + 1))
        params["bound"] = rng.randint(2, 4)
        params["crashes"] = crashed
    elif family in ("carrier-rotation", "spliced-adversary"):
        correct = sorted(set(range(1, n + 1)) - set(crashed))
        params["carriers"] = correct[: rng.randint(1, len(correct))]
        params["crashes"] = crashed
    elif family == "crash-churn":
        params["period"] = rng.randint(8, 64)
        params["outage"] = rng.randint(0, params["period"])
        params["churn"] = rng.randint(0, 2)
        params["crashes"] = crashed
    elif family == "alternating-epochs":
        params["sync_epoch"] = rng.randint(4, 32)
        params["async_epoch"] = rng.randint(4, 32)
        params["epoch_growth"] = rng.choice([0, 0, 3])
        params["crashes"] = crashed
    elif family != "round-robin":
        params["crashes"] = crashed
    else:
        # Round-robin dies if the whole rotation crashes; initial crashes are
        # fine as long as one process survives, which n - 2 guarantees.
        params["crashes"] = crashed
    horizon = rng.randint(50, 400)
    return params, horizon


class TestRandomizedEquivalenceSweep:
    def test_fifty_random_scenarios_agree_between_policies(self):
        rng = random.Random(987654)
        combos = 0
        while combos < 50:
            params, horizon = _random_combination(rng)
            generator = build_generator(params)
            slow_sim, slow_tracker = _fresh(generator.n)
            fast_sim, fast_tracker = _fresh(generator.n)
            slow = slow_sim.run(generator.stream(), max_steps=horizon)
            fast = fast_sim.run_fast(generator.stream(), max_steps=horizon)
            context = f"combo {combos}: {params!r} horizon={horizon}"
            assert fast.steps_executed == slow.steps_executed == horizon, context
            assert fast.outputs == slow.outputs, context
            assert fast.halted_processes == slow.halted_processes, context
            assert fast.stopped_early == slow.stopped_early, context
            assert fast_tracker.changes == slow_tracker.changes, context
            assert (
                fast_sim.registers.total_reads() == slow_sim.registers.total_reads()
            ), context
            assert (
                fast_sim.registers.total_writes() == slow_sim.registers.total_writes()
            ), context
            assert [fast_sim.steps_taken(p) for p in range(1, generator.n + 1)] == [
                slow_sim.steps_taken(p) for p in range(1, generator.n + 1)
            ], context
            combos += 1

    def test_halting_programs_agree_between_policies(self):
        rng = random.Random(24680)
        for _ in range(10):
            n = rng.randint(1, 4)
            steps = tuple(rng.randint(1, n) for _ in range(rng.randint(10, 60)))
            schedule = Schedule(steps=steps, n=n)
            slow_sim, slow_tracker = _fresh(n, _halting_program)
            fast_sim, fast_tracker = _fresh(n, _halting_program)
            slow = slow_sim.run(schedule)
            fast = fast_sim.run_fast(schedule)
            assert fast.steps_executed == slow.steps_executed
            assert fast.outputs == slow.outputs
            assert fast.halted_processes == slow.halted_processes
            assert fast_tracker.changes == slow_tracker.changes
