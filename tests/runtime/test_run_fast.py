"""Equivalence of `Simulator.run_fast` with `Simulator.run`, and budget validation."""

import pytest

from repro.failure_detectors.anti_omega import KAntiOmegaAutomaton, make_anti_omega_algorithm
from repro.failure_detectors.base import FD_OUTPUT, WINNER_SET
from repro.memory.registers import RegisterFile
from repro.runtime.automaton import FunctionAutomaton, ReadOp, WriteOp
from repro.runtime.observers import OutputTracker
from repro.runtime.simulator import Simulator, build_simulator
from repro.core.schedule import Schedule
from repro.errors import SimulationError
from repro.schedules.set_timely import SetTimelyGenerator


def _detector_simulator(n, t, k):
    registers = RegisterFile()
    KAntiOmegaAutomaton.declare_registers(registers, n=n, k=k)
    automata = make_anti_omega_algorithm(n=n, t=t, k=k)
    simulator = Simulator(n=n, automata=automata, registers=registers)
    trackers = (OutputTracker(key=FD_OUTPUT), OutputTracker(key=WINNER_SET))
    for tracker in trackers:
        simulator.add_observer(tracker)
    return simulator, trackers


class TestRunFastEquivalence:
    def test_identical_outputs_and_tracker_changes_on_detector_run(self):
        n, t, k, horizon = 4, 2, 2, 20_000
        generator = SetTimelyGenerator(n=n, p_set={1, 2}, q_set={1, 2, 3}, bound=3, seed=7)
        slow_sim, slow_trackers = _detector_simulator(n, t, k)
        slow = slow_sim.run(generator.infinite(), max_steps=horizon)
        fast_sim, fast_trackers = _detector_simulator(n, t, k)
        fast = fast_sim.run_fast(generator.stream(), max_steps=horizon)

        assert fast.steps_executed == slow.steps_executed == horizon
        assert fast.outputs == slow.outputs
        assert fast.halted_processes == slow.halted_processes
        # The version-gated sampling must record the *same* change sequences,
        # at the same global step indices.
        for slow_tracker, fast_tracker in zip(slow_trackers, fast_trackers):
            assert fast_tracker.changes == slow_tracker.changes

    def test_identical_register_operation_counts(self):
        n, t, k, horizon = 3, 2, 2, 5_000
        generator = SetTimelyGenerator(n=n, p_set={1}, q_set={1, 2, 3}, bound=3, seed=3)
        slow_sim, _ = _detector_simulator(n, t, k)
        slow_sim.run(generator.infinite(), max_steps=horizon)
        fast_sim, _ = _detector_simulator(n, t, k)
        fast_sim.run_fast(generator.stream(), max_steps=horizon)
        assert fast_sim.registers.total_reads() == slow_sim.registers.total_reads()
        assert fast_sim.registers.total_writes() == slow_sim.registers.total_writes()

    def test_collect_trace_matches_run(self):
        schedule = Schedule(steps=(1, 2, 1, 2, 1), n=2)

        def program(automaton, ctx):
            count = 0
            while True:
                count += 1
                automaton.publish("count", count)
                yield WriteOp(("scratch", automaton.pid), count)

        slow = build_simulator(2, lambda pid: FunctionAutomaton(pid, 2, program))
        fast = build_simulator(2, lambda pid: FunctionAutomaton(pid, 2, program))
        slow_result = slow.run(schedule)
        fast_result = fast.run_fast(schedule, collect_trace=True)
        assert fast_result.executed_schedule.steps == slow_result.executed_schedule.steps
        assert fast.trace().steps == slow.trace().steps

    def test_without_collect_trace_schedule_is_empty_but_counts_exact(self):
        schedule = Schedule(steps=(1, 2, 1), n=2)

        def program(automaton, ctx):
            while True:
                yield WriteOp(("scratch", automaton.pid), 0)

        simulator = build_simulator(2, lambda pid: FunctionAutomaton(pid, 2, program))
        result = simulator.run_fast(schedule)
        assert result.steps_executed == 3
        assert result.executed_schedule.steps == ()
        assert simulator.steps_taken(1) == 2 and simulator.steps_taken(2) == 1

    def test_halting_program_equivalent(self):
        def program(automaton, ctx):
            value = yield ReadOp(("r", 1))
            automaton.publish("seen", value)
            return "done"

        schedule = Schedule(steps=(1, 1, 1, 2, 2), n=2)
        slow = build_simulator(2, lambda pid: FunctionAutomaton(pid, 2, program))
        fast = build_simulator(2, lambda pid: FunctionAutomaton(pid, 2, program))
        slow_result = slow.run(schedule)
        fast_result = fast.run_fast(schedule)
        assert fast_result.halted_processes == slow_result.halted_processes == [1, 2]
        assert fast_result.outputs == slow_result.outputs

    def test_strict_mode_raises_on_halted_process(self):
        def program(automaton, ctx):
            return "done"
            yield  # pragma: no cover

        simulator = build_simulator(
            1, lambda pid: FunctionAutomaton(pid, 1, program), strict=True
        )
        with pytest.raises(SimulationError):
            simulator.run_fast(Schedule(steps=(1, 1), n=1))

    def test_stop_condition_honored(self):
        def program(automaton, ctx):
            count = 0
            while True:
                count += 1
                automaton.publish("count", count)
                yield WriteOp(("scratch", automaton.pid), count)

        simulator = build_simulator(1, lambda pid: FunctionAutomaton(pid, 1, program))
        result = simulator.run_fast(
            Schedule(steps=(1,) * 100, n=1),
            stop_condition=lambda step, sim: sim.output_of(1, "count", 0) >= 5,
        )
        assert result.stopped_early
        assert result.steps_executed == 5

    def test_operation_subclasses_execute_on_fast_path(self):
        # validate_operation accepts ReadOp/WriteOp subclasses, so the fast
        # path's exact-type fast branch must fall back to executing them.
        class TaggedRead(ReadOp):
            pass

        def program(automaton, ctx):
            yield WriteOp(("r", 1), 42)
            value = yield TaggedRead(("r", 1))
            automaton.publish("seen", value)

        simulator = build_simulator(1, lambda pid: FunctionAutomaton(pid, 1, program))
        result = simulator.run_fast(Schedule(steps=(1, 1, 1), n=1))
        assert result.outputs[1]["seen"] == 42

    def test_unknown_pid_rejected(self):
        simulator = build_simulator(
            2, lambda pid: FunctionAutomaton(pid, 2, lambda a, c: iter(()))
        )
        with pytest.raises(SimulationError):
            simulator.run_fast([3], max_steps=1)


class TestStepBudgetValidation:
    def _simulator(self):
        def program(automaton, ctx):
            while True:
                yield WriteOp(("scratch", automaton.pid), 0)

        return build_simulator(1, lambda pid: FunctionAutomaton(pid, 1, program))

    @pytest.mark.parametrize("bad_budget", [0, -1, -100])
    def test_zero_or_negative_budget_rejected_for_finite_schedule(self, bad_budget):
        simulator = self._simulator()
        with pytest.raises(SimulationError, match="positive step budget"):
            simulator.run(Schedule(steps=(1, 1), n=1), max_steps=bad_budget)

    def test_zero_budget_rejected_on_fast_path_too(self):
        simulator = self._simulator()
        with pytest.raises(SimulationError, match="positive step budget"):
            simulator.run_fast(Schedule(steps=(1,), n=1), max_steps=0)

    def test_omitting_budget_still_runs_finite_schedule_to_its_end(self):
        simulator = self._simulator()
        result = simulator.run(Schedule(steps=(1, 1, 1), n=1))
        assert result.steps_executed == 3
