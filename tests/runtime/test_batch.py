"""Batched replica execution: the equivalence contract with the per-run path.

The headline test is the seeded randomized sweep: 50+ random
(scenario family, algorithm, n, seed) combinations, each executed through
today's per-run fast path (one live generator stream per replica) and through
:func:`~repro.runtime.kernel.execute_batch` over one shared compiled buffer,
with outputs, step counts (total and per process), halted sets and register
operation counts asserted identical.  That contract is what lets the campaign
layer batch replicas freely.
"""

import random

import pytest

from repro.core.schedule import CompiledSchedule, InfiniteSchedule, Schedule
from repro.errors import SimulationError
from repro.runtime.automaton import FunctionAutomaton, ReadOp, WriteOp
from repro.runtime.kernel import FAST_TRACED, INSTRUMENTED, execute_batch
from repro.runtime.observers import OutputTracker
from repro.runtime.simulator import build_simulator
from repro.scenarios.spec import build_generator


# ----------------------------------------------------------------------
# Algorithms for the sweep: three distinct step/publish/halt profiles
# ----------------------------------------------------------------------

def _token_program(automaton, ctx):
    """Reads, writes and publishes forever — the steady-state profile."""
    total = 0
    while True:
        value = yield ReadOp(("token",))
        current = value or 0
        yield WriteOp(("token",), current + 1)
        total += current
        if total % 3 == 0:
            automaton.publish("total", total)


def _halting_program(automaton, ctx):
    """Publishes then returns after five rounds — exercises the halt path."""
    for round_index in range(5):
        value = yield ReadOp(("token",))
        automaton.publish("last", value)
        yield WriteOp(("scratch", automaton.pid), round_index)
    return "done"


def _owned_counter_program(automaton, ctx):
    """Single-writer per-process registers with cross-process reads."""
    ops = [ReadOp(("count", peer)) for peer in range(1, automaton.n + 1)]
    mine = ("count", automaton.pid)
    value = 0
    while True:
        total = 0
        for op in ops:
            observed = yield op
            total += observed or 0
        value += 1
        yield WriteOp(mine, value)
        automaton.publish("seen", total)


ALGORITHMS = {
    "token": _token_program,
    "halting": _halting_program,
    "owned-counter": _owned_counter_program,
}


def _fresh(n, program, tracked=False):
    simulator = build_simulator(n, lambda pid: FunctionAutomaton(pid, n, program))
    if program is _owned_counter_program:
        simulator.registers.declare_array(
            "count", tuple(range(1, n + 1)), initial=0, owner_from_index=True
        )
    tracker = None
    if tracked:
        tracker = OutputTracker(
            key={"token": "total", "halting": "last", "owned-counter": "seen"}[
                [k for k, v in ALGORITHMS.items() if v is program][0]
            ]
        )
        simulator.add_observer(tracker)
    return simulator, tracker


def _random_combination(rng):
    """One random (family params, n, horizon) combination for the sweep."""
    n = rng.randint(2, 6)
    family = rng.choice(
        ["round-robin", "random", "set-timely", "eventually-synchronous",
         "carrier-rotation", "crash-churn", "alternating-epochs", "spliced-adversary"]
    )
    seed = rng.randint(0, 10_000)
    params = {"schedule": family, "n": n, "seed": seed}
    crashed = rng.sample(range(1, n + 1), rng.randint(0, max(n - 2, 0)))
    if family == "set-timely":
        correct = sorted(set(range(1, n + 1)) - set(crashed))
        p_size = rng.randint(1, max(len(correct) - 1, 1))
        params["p_set"] = correct[:p_size]
        params["q_set"] = list(range(1, n + 1))
        params["bound"] = rng.randint(2, 4)
    elif family in ("carrier-rotation", "spliced-adversary"):
        correct = sorted(set(range(1, n + 1)) - set(crashed))
        params["carriers"] = correct[: rng.randint(1, len(correct))]
    elif family == "crash-churn":
        params["period"] = rng.randint(8, 64)
        params["outage"] = rng.randint(0, params["period"])
        params["churn"] = rng.randint(0, 2)
    elif family == "alternating-epochs":
        params["sync_epoch"] = rng.randint(4, 32)
        params["async_epoch"] = rng.randint(4, 32)
        params["epoch_growth"] = rng.choice([0, 0, 3])
    params["crashes"] = crashed
    horizon = rng.randint(50, 400)
    return params, horizon


def _observable_state(simulator, result, n):
    return (
        result.outputs,
        result.steps_executed,
        result.stopped_early,
        result.halted_processes,
        simulator.registers.total_reads(),
        simulator.registers.total_writes(),
        [simulator.steps_taken(pid) for pid in range(1, n + 1)],
    )


class TestRandomizedBatchEquivalence:
    def test_fifty_random_combinations_agree_with_per_run_path(self):
        rng = random.Random(20260730)
        combos = 0
        while combos < 54:
            params, horizon = _random_combination(rng)
            algorithm = rng.choice(sorted(ALGORITHMS))
            program = ALGORITHMS[algorithm]
            generator = build_generator(params)
            n = generator.n
            compiled = build_generator(params).compile(horizon)
            replicas = 3
            per_run = []
            for _ in range(replicas):
                simulator, _ = _fresh(n, program)
                result = simulator.run_fast(
                    build_generator(params).stream(), max_steps=horizon
                )
                per_run.append(_observable_state(simulator, result, n))
            batch_sims = [_fresh(n, program)[0] for _ in range(replicas)]
            batch_results = execute_batch(batch_sims, compiled)
            batched = [
                _observable_state(simulator, result, n)
                for simulator, result in zip(batch_sims, batch_results)
            ]
            context = f"combo {combos}: {algorithm} on {params!r} horizon={horizon}"
            assert batched == per_run, context
            combos += 1

    def test_batch_with_trackers_matches_per_run_tracker_changes(self):
        rng = random.Random(13579)
        for _ in range(10):
            params, horizon = _random_combination(rng)
            algorithm = rng.choice(sorted(ALGORITHMS))
            program = ALGORITHMS[algorithm]
            n = build_generator(params).n
            compiled = build_generator(params).compile(horizon)
            solo_sim, solo_tracker = _fresh(n, program, tracked=True)
            solo = solo_sim.run_fast(build_generator(params).stream(), max_steps=horizon)
            batch_sim, batch_tracker = _fresh(n, program, tracked=True)
            [batched] = execute_batch([batch_sim], compiled)
            assert batched.outputs == solo.outputs
            assert batch_tracker.changes == solo_tracker.changes
            assert _observable_state(batch_sim, batched, n) == _observable_state(
                solo_sim, solo, n
            )


class TestExecuteBatchSources:
    def _sims(self, count, n=2, program=_token_program):
        return [_fresh(n, program)[0] for _ in range(count)]

    def test_empty_batch_is_a_noop(self):
        assert execute_batch([], CompiledSchedule(n=2, steps=[1, 2])) == []

    def test_mismatched_universes_rejected(self):
        sims = [self._sims(1, n=2)[0], self._sims(1, n=3)[0]]
        with pytest.raises(SimulationError, match="one Πn"):
            execute_batch(sims, CompiledSchedule(n=2, steps=[1, 2]))

    def test_compiled_schedule_over_wrong_universe_rejected(self):
        # Same contract as execute(): a buffer compiled for Π3 cannot drive
        # Π2 replicas, even if its steps happen to stay within range.
        with pytest.raises(SimulationError, match="Π3"):
            execute_batch(self._sims(2, n=2), CompiledSchedule(n=3, steps=[1, 2]))

    def test_finite_schedule_source_is_shared_across_replicas(self):
        schedule = Schedule(steps=(1, 2, 1, 2, 1), n=2)
        sims = self._sims(3)
        results = execute_batch(sims, schedule)
        assert [r.steps_executed for r in results] == [5, 5, 5]
        assert all(r.outputs == results[0].outputs for r in results)

    def test_one_shot_iterable_is_materialized_once_for_all_replicas(self):
        sims = self._sims(3)
        results = execute_batch(sims, iter([1, 2, 1, 1, 2, 2]))
        assert [r.steps_executed for r in results] == [6, 6, 6]
        assert [sim.steps_taken(1) for sim in sims] == [3, 3, 3]

    def test_infinite_schedule_requires_max_steps(self):
        infinite = InfiniteSchedule(n=2, step_fn=lambda index: 1 + index % 2)
        with pytest.raises(SimulationError, match="max_steps"):
            execute_batch(self._sims(2), infinite)
        results = execute_batch(self._sims(2), infinite, max_steps=10)
        assert [r.steps_executed for r in results] == [10, 10]

    def test_max_steps_caps_compiled_buffer(self):
        compiled = CompiledSchedule(n=2, steps=[1, 2] * 10)
        results = execute_batch(self._sims(2), compiled, max_steps=7)
        assert [r.steps_executed for r in results] == [7, 7]

    def test_non_positive_max_steps_rejected(self):
        with pytest.raises(SimulationError, match="positive step budget"):
            execute_batch(self._sims(1), CompiledSchedule(n=2, steps=[1, 2]), max_steps=0)

    def test_instrumented_policy_collects_traces_per_replica(self):
        compiled = CompiledSchedule(n=2, steps=[1, 2, 1])
        sims = self._sims(2)
        results = execute_batch(sims, compiled, policy=INSTRUMENTED)
        for sim, result in zip(sims, results):
            assert result.executed_schedule.steps == (1, 2, 1)
            assert sim.trace().steps == (1, 2, 1)

    def test_traced_policy_with_tracker_rides_the_general_loop(self):
        compiled = CompiledSchedule(n=2, steps=[1, 2] * 20)
        simulator, tracker = _fresh(2, _token_program, tracked=True)
        [result] = execute_batch([simulator], compiled, policy=FAST_TRACED)
        assert result.executed_schedule.steps == (1, 2) * 20
        assert tracker.changes  # publications were sampled
