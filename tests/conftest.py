"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import random
from typing import List

import pytest
from hypothesis import HealthCheck, settings

from repro.core.schedule import Schedule

# One moderate profile for all property-based tests: enough examples to be
# meaningful, no per-example deadline (simulator-driven examples vary a lot).
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> random.Random:
    """A deterministically seeded RNG for tests that need ad-hoc randomness."""
    return random.Random(20090802)  # the paper's HAL submission date


@pytest.fixture
def small_schedule() -> Schedule:
    """A short hand-written schedule over three processes used by many unit tests."""
    return Schedule(steps=(1, 2, 3, 3, 2, 1, 3, 3, 3, 1), n=3)


def random_schedule(n: int, length: int, seed: int) -> Schedule:
    """Helper used by several test modules to build seeded random schedules."""
    generator = random.Random(seed)
    return Schedule(steps=tuple(generator.randint(1, n) for _ in range(length)), n=n)
