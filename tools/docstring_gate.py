#!/usr/bin/env python3
"""Docstring coverage gate: fail when public API surface lacks docstrings.

Walks the given files/directories, parses each ``*.py`` with :mod:`ast`, and
reports every public module, class, and function (including methods) without
a docstring.  "Public" means the name does not start with an underscore; a
module is public unless its file name does.  Nested functions are skipped —
they are implementation detail, not API surface.

Usage (what CI runs over the search subsystem)::

    python tools/docstring_gate.py src/repro/search

Exit status 0 when everything is documented, 1 otherwise (missing items are
listed one per line as ``path:lineno: kind name``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: (path, line, kind, qualified name) of one undocumented definition.
Missing = Tuple[Path, int, str, str]


def iter_python_files(targets: List[Path]) -> Iterator[Path]:
    """Yield every ``*.py`` file under the given files/directories, sorted."""
    for target in targets:
        if target.is_dir():
            yield from sorted(target.rglob("*.py"))
        elif target.suffix == ".py":
            yield target


def _check_body(
    path: Path, nodes: List[ast.stmt], prefix: str, missing: List[Missing]
) -> None:
    for node in nodes:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            name = node.name
            if name.startswith("_"):
                continue
            qualified = f"{prefix}{name}"
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            if ast.get_docstring(node) is None:
                missing.append((path, node.lineno, kind, qualified))
            if isinstance(node, ast.ClassDef):
                _check_body(path, node.body, f"{qualified}.", missing)


def check_file(path: Path) -> List[Missing]:
    """All undocumented public definitions in one Python file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    missing: List[Missing] = []
    if not path.stem.startswith("_") or path.name == "__init__.py":
        if ast.get_docstring(tree) is None:
            missing.append((path, 1, "module", path.stem))
    _check_body(path, tree.body, "", missing)
    return missing


def check(targets: List[Path]) -> List[Missing]:
    """All undocumented public definitions under the given targets."""
    missing: List[Missing] = []
    for path in iter_python_files(targets):
        missing.extend(check_file(path))
    return missing


def main(argv: List[str]) -> int:
    """CLI entry point: print missing docstrings, return the exit status."""
    if not argv:
        print("usage: docstring_gate.py <file-or-directory> ...", file=sys.stderr)
        return 2
    targets = [Path(argument) for argument in argv]
    for target in targets:
        if not target.exists():
            print(f"docstring gate: no such path {target}", file=sys.stderr)
            return 2
    missing = check(targets)
    if missing:
        for path, lineno, kind, name in missing:
            print(f"{path}:{lineno}: undocumented public {kind} {name}")
        print(f"docstring gate: {len(missing)} undocumented public definition(s)")
        return 1
    print(f"docstring gate: ok ({len(list(iter_python_files(targets)))} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
