#!/usr/bin/env python
"""Quickstart: set timeliness, the systems S^i_{j,n}, and solving agreement.

Walks through the paper's pipeline end to end:

1. build a schedule and measure set timeliness (Definition 1);
2. ask the Theorem 27 oracle which systems solve a given (t, k, n)-agreement
   instance and which "closely matching" system the paper assigns to it;
3. generate a certified schedule of that matching system and actually solve
   the instance with the Figure 2 detector + the k-instance agreement layer.

Run:  python examples/quickstart.py
"""

from repro import (
    AgreementInstance,
    Schedule,
    SetTimelyGenerator,
    analyze_timeliness,
    classify,
    distinct_inputs,
    matching_system,
    solve_agreement,
)
from repro.analysis.reporting import ascii_table


def step_1_set_timeliness() -> None:
    print("=" * 72)
    print("1. Set timeliness on a hand-written schedule")
    print("=" * 72)
    # Processes 1 and 2 alternate with 3, but individually each of them
    # disappears for stretches — the Figure 1 phenomenon in miniature.
    schedule = Schedule(steps=(1, 3, 1, 3, 2, 3, 2, 3, 1, 3, 2, 3) * 5, n=3)
    for p_set in ({1}, {2}, {1, 2}):
        witness = analyze_timeliness(schedule, p_set, {3})
        print(
            f"  P={sorted(p_set)} vs Q={{3}}: minimal bound {witness.minimal_bound} "
            f"({witness.total_q_steps} Q-steps observed)"
        )
    print()


def step_2_solvability_oracle(problem: AgreementInstance) -> None:
    print("=" * 72)
    print(f"2. Theorem 27 oracle for {problem.describe()}")
    print("=" * 72)
    rows = []
    for (i, j) in [(1, 2), (2, 3), (2, 2), (3, 4), (1, 4)]:
        from repro.types import SystemCoordinates

        coords = SystemCoordinates(i=i, j=j, n=problem.n)
        result = classify(problem, coords)
        rows.append([coords.describe(), result.verdict.value, result.reason[:60] + "..."])
    print(ascii_table(["system", "verdict", "why"], rows))
    print(f"  closely matching system: {matching_system(problem).describe()}")
    print()


def step_3_solve(problem: AgreementInstance) -> None:
    print("=" * 72)
    print(f"3. Solving {problem.describe()} in {matching_system(problem).describe()}")
    print("=" * 72)
    generator = SetTimelyGenerator(
        n=problem.n,
        p_set=set(range(1, problem.k + 1)),          # |P| = k
        q_set=set(range(1, problem.t + 2)),          # |Q| = t + 1
        bound=3,
        seed=7,
    )
    print(f"  schedule: {generator.description}")
    report = solve_agreement(problem, distinct_inputs(problem.n), generator, max_steps=400_000)
    print(f"  protocol: {report.protocol}")
    print(f"  decisions: {report.decisions}")
    print(f"  distinct decision values: {len(report.verdict.distinct_decisions)} (k = {problem.k})")
    print(f"  specification satisfied: {report.verdict.satisfied}")
    if report.detector_verdict is not None:
        print(
            "  detector stabilized at step "
            f"{report.detector_verdict.stabilization_step} of {report.steps_executed} executed"
        )
    print()


def main() -> None:
    problem = AgreementInstance(t=2, k=2, n=4)
    step_1_set_timeliness()
    step_2_solvability_oracle(problem)
    step_3_solve(problem)


if __name__ == "__main__":
    main()
