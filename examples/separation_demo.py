#!/usr/bin/env python
"""The separation of Theorem 26, demonstrated on a single schedule family.

Setting ``n = k + 1`` and ``t = k``, the carrier-rotation adversary produces
schedules in which the carrier set of size ``k`` is timely with respect to
``Πn`` (so the schedule lies in ``S^k_{t+1,n}``), yet **no** set of size
``k - 1`` is timely with respect to anything that matters.

On that same schedule:

* the Figure 2 detector with degree ``k`` stabilizes within a few hundred
  steps and never changes its winner set again, and the detector-based
  protocol solves ``(t, k, n)``-agreement;
* the detector with degree ``k - 1`` — the machinery a ``(t, k-1, n)``
  algorithm would need — keeps changing its winner set essentially forever
  (its last change scales with whatever horizon we give it), matching the
  impossibility on the stronger problem.

Run:  python examples/separation_demo.py
"""

from repro import AgreementInstance, CarrierRotationAdversary, distinct_inputs, solve_agreement
from repro.analysis.experiment import separation_experiment
from repro.analysis.reporting import ascii_table
from repro.analysis.timeliness_matrix import timely_sets_of_size

K = 2
N, T = K + 1, K


def main() -> None:
    adversary = CarrierRotationAdversary(n=N, carriers=frozenset(range(1, K + 1)))
    print(f"schedule family: {adversary.description}")
    prefix = adversary.generate(20_000)
    print(
        f"  sets of size {K} timely w.r.t. Πn (bound <= 8): "
        f"{[sorted(s) for s in timely_sets_of_size(prefix, K, bound=8)]}"
    )
    print(
        f"  sets of size {K - 1} timely w.r.t. Πn (bound <= 8): "
        f"{[sorted(s) for s in timely_sets_of_size(prefix, K - 1, bound=8)]}"
    )
    print()

    headers, rows = separation_experiment(k=K, horizons=(40_000, 80_000, 160_000))
    print(
        ascii_table(
            headers,
            rows,
            title=(
                f"E4 — detector behaviour on the same schedule: degree {K} stabilizes, "
                f"degree {K - 1} churns to the horizon"
            ),
        )
    )
    print()

    problem = AgreementInstance(t=T, k=K, n=N)
    report = solve_agreement(problem, distinct_inputs(N), adversary, max_steps=400_000)
    print(
        f"solvable side: {problem.describe()} on this schedule -> decided "
        f"{report.decisions} in {report.steps_executed} steps "
        f"(specification satisfied: {report.verdict.satisfied})"
    )
    print()
    print("Note on the unsolvable side: impossibility is a statement over all")
    print("algorithms, so no finite run can prove it.  What the table shows is the")
    print("behaviour the proof predicts for this machinery: without a timely set of")
    print(f"size {K - 1}, the degree-{K - 1} detector's output never stabilizes.")


if __name__ == "__main__":
    main()
