#!/usr/bin/env python
"""Figure 1, executed: a set can be timely while none of its members is.

Reproduces the paper's introductory example.  The schedule is
``S = [(p1 · q)^i (p2 · q)^i]`` for growing ``i``: process ``q`` keeps running,
while ``p1`` and ``p2`` take turns carrying the set ``{p1, p2}``, each of them
disappearing for longer and longer stretches.

The script prints the observed minimal timeliness bounds on growing prefixes
(experiment E1) and the full pairwise timeliness matrix of a long prefix.

Run:  python examples/figure1_set_timeliness.py
"""

from repro import Figure1Generator, analyze_timeliness
from repro.analysis.experiment import figure1_experiment
from repro.analysis.reporting import ascii_table
from repro.analysis.timeliness_matrix import pairwise_timeliness


def main() -> None:
    headers, rows = figure1_experiment(blocks=(2, 4, 8, 16, 32))
    print(
        ascii_table(
            headers,
            rows,
            title="E1 — observed minimal timeliness bounds on prefixes of the Figure 1 schedule",
        )
    )
    print()
    print("Reading: the {p1} and {p2} bounds grow with the prefix (no single bound")
    print("can ever witness their timeliness), while the bound of the *set* {p1, p2}")
    print("stays at 2 — the set is timely with respect to {q} even though neither")
    print("member is.")
    print()

    generator = Figure1Generator()
    prefix = generator.generate(generator.steps_for_blocks(20))
    matrix = pairwise_timeliness(prefix)
    print(
        ascii_table(
            ["P \\ Q"] + [f"Q={{{q}}}" for q in range(1, 4)],
            matrix.rows(),
            title=f"Pairwise timeliness bounds over {len(prefix)} steps (p1=1, p2=2, q=3)",
        )
    )
    print()
    virtual = prefix.restricted_to({1, 2})
    print(
        "Virtual-process view: erasing the indices of p1 and p2 leaves "
        f"{len(virtual)} steps of the virtual process p, which alternates with q "
        f"(set bound {analyze_timeliness(prefix, {1, 2}, {3}).minimal_bound})."
    )


if __name__ == "__main__":
    main()
