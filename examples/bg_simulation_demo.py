#!/usr/bin/env python
"""The BG-simulation machinery used by the paper's impossibility proofs.

Theorem 26(2b) has ``k + 1`` processes simulate an ``n``-process algorithm.
This demo runs the reproduction's BG-style simulation substrate directly:

* three simulators jointly drive a five-thread full-information protocol,
  agreeing on every simulated step through safe-agreement objects;
* then the run is repeated with one simulator crashing inside an unsafe
  window, showing the defining BG property — a crashed simulator blocks at
  most one simulated thread, the others keep being simulated to completion.

Run:  python examples/bg_simulation_demo.py
"""

from repro.bg.simulation import full_information_agreement_protocol, make_bg_simulators
from repro.core.schedule import Schedule
from repro.runtime.simulator import Simulator

SIMULATORS = 3
THREADS = 5


def run(schedule_steps, namespace):
    protocol = full_information_agreement_protocol(threads=THREADS)
    inputs = {pid: pid * 10 for pid in range(1, SIMULATORS + 1)}
    automata = make_bg_simulators(SIMULATORS, protocol, inputs, namespace=namespace)
    simulator = Simulator(n=SIMULATORS, automata=automata)
    simulator.run(Schedule(steps=tuple(schedule_steps), n=SIMULATORS))
    return automata


def main() -> None:
    print(f"{SIMULATORS} simulators, {THREADS} simulated threads, inputs 10/20/30")
    print()

    print("Failure-free run (round-robin of the simulators):")
    automata = run([1, 2, 3] * 15_000, namespace="demo-ok")
    for pid, automaton in automata.items():
        print(f"  simulator {pid}: simulated decisions {automaton.simulated_decisions()}")
    print()

    print("Run where simulator 3 crashes inside its first unsafe window:")
    automata = run((3,) + tuple([1, 2] * 40_000), namespace="demo-crash")
    for pid in (1, 2):
        decided = automata[pid].simulated_decisions()
        print(
            f"  simulator {pid}: decided {len(decided)}/{THREADS} threads "
            f"({sorted(decided)}) — exactly one thread is blocked by the crash"
        )
    print()
    print("All simulators that decide a thread decide the same value for it, and")
    print("every decision is one of the agreed simulator inputs — the two properties")
    print("the reduction in the paper's proof relies on.")


if __name__ == "__main__":
    main()
