#!/usr/bin/env python
"""The Theorem 27 solvability map, rendered for several problem instances.

For each (t, k, n)-agreement instance the script prints the grid of systems
``S^i_{j,n}`` (solvable cells marked ``S``), the solvable frontier (the
weakest systems that still solve the problem — the paper's closely matching
system ``S^k_{t+1,n}`` is its right-most point), and the separation statements
the paper derives.

Run:  python examples/solvability_map.py
"""

from repro import AgreementInstance, matching_system, solvability_grid, solvable_frontier
from repro.analysis.experiment import separation_statements_experiment
from repro.analysis.reporting import ascii_table, bullet_list, render_solvability_grid
from repro.core.solvability import separations


def show_problem(t: int, k: int, n: int) -> None:
    problem = AgreementInstance(t=t, k=k, n=n)
    print("=" * 72)
    print(f"{problem.describe()}   —   matching system {matching_system(problem).describe()}")
    print("=" * 72)
    grid = solvability_grid(problem)
    print(render_solvability_grid(grid, n=n))
    frontier = solvable_frontier(problem)
    print("frontier (weakest solvable systems):")
    print(bullet_list(coords.describe() for coords in frontier))
    statements = separations(problem)
    if statements:
        print("separations:")
        print(bullet_list(statement.description for statement in statements))
    print()


def main() -> None:
    for (t, k, n) in [(2, 2, 4), (2, 1, 4), (3, 2, 5), (4, 3, 6)]:
        show_problem(t, k, n)

    headers, rows = separation_statements_experiment()
    print(
        ascii_table(
            headers,
            rows,
            title="Separation statements cross-checked against the Theorem 27 oracle",
        )
    )


if __name__ == "__main__":
    main()
