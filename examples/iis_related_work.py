#!/usr/bin/env python
"""Section 6's remark about the IIS model, executed.

The paper contrasts set timeliness with the IIS/IRIS models and notes that a
process which never appears in other processes' snapshots may nevertheless be
perfectly timely — it "may execute at the same speed as other processes but
always start a round a few steps later".

This script builds exactly that situation: three processes run three iterated
immediate-snapshot rounds under a schedule in which process 3 is phase-shifted
by one round.  The timeliness analysis shows process 3 is timely with a
constant bound, yet its value never appears in any view of processes 1 and 2.

Run:  python examples/iis_related_work.py
"""

from repro.analysis.reporting import ascii_table
from repro.core.timeliness import analyze_timeliness
from repro.iis.iterated import IteratedImmediateSnapshotAutomaton, phase_shifted_round_schedule
from repro.runtime.simulator import Simulator

N, ROUNDS, SHIFTED = 3, 3, 3


def main() -> None:
    schedule = phase_shifted_round_schedule(n=N, rounds=ROUNDS, shifted=SHIFTED)
    automata = {
        pid: IteratedImmediateSnapshotAutomaton(pid=pid, n=N, rounds=ROUNDS, input_value=f"x{pid}")
        for pid in range(1, N + 1)
    }
    simulator = Simulator(n=N, automata=automata)
    simulator.run(schedule)

    witness = analyze_timeliness(schedule, {SHIFTED}, {1, 2})
    print(f"schedule length: {len(schedule)} steps")
    print(
        f"process {SHIFTED} vs {{1,2}}: minimal timeliness bound {witness.minimal_bound} "
        f"(constant — the process is timely, just one round late)"
    )
    print()

    rows = []
    for pid in range(1, N + 1):
        for round_number, view in enumerate(automata[pid].views(), start=1):
            rows.append([pid, round_number, sorted(view.keys()), SHIFTED in view])
    print(
        ascii_table(
            ["process", "round", "processes in view", f"sees process {SHIFTED}?"],
            rows,
            title="IIS views under the phase-shifted schedule",
        )
    )
    print()
    print(f"Processes 1 and 2 never see process {SHIFTED} in any round, although it is")
    print("timely in the shared-memory sense — the structural mismatch between IRIS-style")
    print("snapshot restrictions and timeliness-based partial synchrony that the paper")
    print("points out in its related-work discussion.")


if __name__ == "__main__":
    main()
